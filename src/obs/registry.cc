#include "obs/registry.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/version.hh"
#include "support/logging.hh"

namespace lbp
{
namespace obs
{

double
Histogram::total() const
{
    double t = 0;
    for (const auto &kv : bins_)
        t += kv.second;
    return t;
}

double
Histogram::mean() const
{
    double t = 0, wsum = 0;
    for (const auto &kv : bins_) {
        t += static_cast<double>(kv.first) * kv.second;
        wsum += kv.second;
    }
    return wsum > 0 ? t / wsum : 0.0;
}

std::int64_t
Histogram::maxValue() const
{
    return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::int64_t
Histogram::percentile(double q) const
{
    if (bins_.empty())
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * total();
    double cum = 0;
    for (const auto &kv : bins_) {
        cum += kv.second;
        if (cum >= target)
            return kv.first;
    }
    return bins_.rbegin()->first;
}

void
Registry::checkFresh(const std::string &name, const void *self) const
{
    // A name must not exist under a different metric type.
    int holders = 0;
    if (counters_.count(name) &&
        static_cast<const void *>(&counters_) != self)
        ++holders;
    if (intGauges_.count(name) &&
        static_cast<const void *>(&intGauges_) != self)
        ++holders;
    if (gauges_.count(name) &&
        static_cast<const void *>(&gauges_) != self)
        ++holders;
    if (hists_.count(name) &&
        static_cast<const void *>(&hists_) != self)
        ++holders;
    LBP_ASSERT(holders == 0, "metric '", name,
               "' already registered with a different type");
}

Counter &
Registry::counter(const std::string &name)
{
    if (!counters_.count(name))
        checkFresh(name, &counters_);
    return counters_[name];
}

IntGauge &
Registry::intGauge(const std::string &name)
{
    if (!intGauges_.count(name))
        checkFresh(name, &intGauges_);
    return intGauges_[name];
}

Gauge &
Registry::gauge(const std::string &name)
{
    if (!gauges_.count(name))
        checkFresh(name, &gauges_);
    return gauges_[name];
}

Histogram &
Registry::histogram(const std::string &name)
{
    if (!hists_.count(name))
        checkFresh(name, &hists_);
    return hists_[name];
}

void
Registry::info(const std::string &name, const std::string &value)
{
    infos_[name] = value;
}

const Counter *
Registry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const std::string *
Registry::findInfo(const std::string &name) const
{
    auto it = infos_.find(name);
    return it == infos_.end() ? nullptr : &it->second;
}

bool
Registry::empty() const
{
    return counters_.empty() && intGauges_.empty() &&
           gauges_.empty() && hists_.empty() && infos_.empty();
}

Json
Registry::toJson() const
{
    Json root = Json::object();
    root.set("schema_version",
             Json::integer(kRegistrySchemaVersion));
    stampVersion(root);

    Json meta = Json::object();
    for (const auto &kv : infos_)
        meta.set(kv.first, Json::str(kv.second));
    root.set("meta", std::move(meta));

    // Merge the three scalar maps into one name-ordered object.
    Json metrics = Json::object();
    auto ci = counters_.begin();
    auto ii = intGauges_.begin();
    auto gi = gauges_.begin();
    while (ci != counters_.end() || ii != intGauges_.end() ||
           gi != gauges_.end()) {
        // Pick the lexicographically smallest pending name.
        const std::string *best = nullptr;
        int which = -1;
        if (ci != counters_.end()) {
            best = &ci->first;
            which = 0;
        }
        if (ii != intGauges_.end() &&
            (!best || ii->first < *best)) {
            best = &ii->first;
            which = 1;
        }
        if (gi != gauges_.end() && (!best || gi->first < *best)) {
            best = &gi->first;
            which = 2;
        }
        switch (which) {
          case 0:
            metrics.set(ci->first, Json::uinteger(ci->second.value()));
            ++ci;
            break;
          case 1:
            metrics.set(ii->first, Json::integer(ii->second.value()));
            ++ii;
            break;
          default:
            metrics.set(gi->first, Json::number(gi->second.value()));
            ++gi;
            break;
        }
    }
    root.set("metrics", std::move(metrics));

    Json hists = Json::object();
    for (const auto &kv : hists_) {
        Json h = Json::object();
        h.set("total", Json::number(kv.second.total()));
        h.set("mean", Json::number(kv.second.mean()));
        // Percentiles of a never-observed histogram are undefined,
        // not 0: serialize them as null so the diff gate's
        // NaN-poison rule flags any consumer that treats them as a
        // real observation.
        const bool empty = kv.second.bins().empty();
        auto pct = [&](double q) {
            return empty ? Json::null()
                         : Json::integer(kv.second.percentile(q));
        };
        h.set("p50", pct(0.50));
        h.set("p95", pct(0.95));
        h.set("p99", pct(0.99));
        Json bins = Json::array();
        for (const auto &bw : kv.second.bins()) {
            Json bin = Json::array();
            bin.push(Json::integer(bw.first));
            bin.push(Json::number(bw.second));
            bins.push(std::move(bin));
        }
        h.set("bins", std::move(bins));
        hists.set(kv.first, std::move(h));
    }
    root.set("histograms", std::move(hists));
    return root;
}

void
Registry::writeCsv(std::ostream &os) const
{
    os << "kind,name,value\n";
    for (const auto &kv : infos_)
        os << "info," << kv.first << "," << kv.second << "\n";
    for (const auto &kv : counters_)
        os << "counter," << kv.first << "," << kv.second.value()
           << "\n";
    for (const auto &kv : intGauges_)
        os << "intgauge," << kv.first << "," << kv.second.value()
           << "\n";
    for (const auto &kv : gauges_)
        os << "gauge," << kv.first << "," << kv.second.value() << "\n";
    for (const auto &kv : hists_) {
        // Undefined percentiles render as explicit null, never 0.
        auto pct = [&](double q) -> std::string {
            return kv.second.bins().empty()
                       ? "null"
                       : std::to_string(kv.second.percentile(q));
        };
        os << "histp50," << kv.first << "," << pct(0.50) << "\n";
        os << "histp95," << kv.first << "," << pct(0.95) << "\n";
        os << "histp99," << kv.first << "," << pct(0.99) << "\n";
        for (const auto &bw : kv.second.bins())
            os << "histbin," << kv.first << "." << bw.first << ","
               << bw.second << "\n";
    }
}

void
Registry::writeTable(std::ostream &os) const
{
    size_t w = 0;
    for (const auto &kv : counters_)
        w = std::max(w, kv.first.size());
    for (const auto &kv : intGauges_)
        w = std::max(w, kv.first.size());
    for (const auto &kv : gauges_)
        w = std::max(w, kv.first.size());
    const Json dump = toJson();
    const Json *metrics = dump.find("metrics");
    for (const auto &kv : metrics->members()) {
        os << std::left << std::setw(static_cast<int>(w) + 2)
           << kv.first << kv.second.dump() << "\n";
    }
    for (const auto &kv : hists_) {
        os << kv.first << "  histogram total=" << kv.second.total()
           << " mean=" << kv.second.mean();
        if (kv.second.bins().empty()) {
            os << " p50=null p95=null p99=null";
        } else {
            os << " p50=" << kv.second.percentile(0.50)
               << " p95=" << kv.second.percentile(0.95)
               << " p99=" << kv.second.percentile(0.99);
        }
        os << " max=" << kv.second.maxValue() << "\n";
    }
}

namespace
{

void
diffSection(const Json &a, const Json &b, const char *section,
            std::vector<DiffEntry> &out)
{
    const Json *sa = a.find(section);
    const Json *sb = b.find(section);
    static const Json kEmpty = Json::object();
    if (!sa)
        sa = &kEmpty;
    if (!sb)
        sb = &kEmpty;

    std::vector<std::string> keys;
    for (const auto &kv : sa->members())
        keys.push_back(kv.first);
    for (const auto &kv : sb->members())
        if (!sa->find(kv.first))
            keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    for (const auto &k : keys) {
        const Json *va = sa->find(k);
        const Json *vb = sb->find(k);
        // A NaN/inf metric is poison: it serializes as `null`, an
        // in-memory dump still holds the non-finite double, and NaN
        // never equals anything (itself included) — so either form
        // always diffs. Missing keys stay a distinct condition
        // ("<absent>").
        auto nonFinite = [](const Json *v) {
            if (!v)
                return false;
            if (v->kind() == Json::Kind::Null)
                return true;
            return v->isNumber() && !std::isfinite(v->asDouble());
        };
        const bool poison = nonFinite(va) || nonFinite(vb);
        if (va && vb && *va == *vb && !poison)
            continue;
        auto render = [&](const Json *v) {
            if (!v)
                return std::string("<absent>");
            if (nonFinite(v))
                return std::string("null (non-finite)");
            return v->dump();
        };
        DiffEntry d;
        d.key = k;
        d.a = render(va);
        d.b = render(vb);
        out.push_back(std::move(d));
    }
}

} // namespace

std::vector<DiffEntry>
diffRegistries(const Json &a, const Json &b)
{
    std::vector<DiffEntry> out;
    diffSection(a, b, "metrics", out);
    diffSection(a, b, "histograms", out);
    return out;
}

} // namespace obs
} // namespace lbp
