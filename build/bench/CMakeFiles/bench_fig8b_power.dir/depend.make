# Empty dependencies file for bench_fig8b_power.
# This may be replaced when dependencies are built.
