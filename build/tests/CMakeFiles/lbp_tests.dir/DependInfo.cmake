
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/lbp_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_branch_combine.cc" "tests/CMakeFiles/lbp_tests.dir/test_branch_combine.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_branch_combine.cc.o.d"
  "/root/repo/tests/test_buffer_alloc.cc" "tests/CMakeFiles/lbp_tests.dir/test_buffer_alloc.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_buffer_alloc.cc.o.d"
  "/root/repo/tests/test_classic_opts.cc" "tests/CMakeFiles/lbp_tests.dir/test_classic_opts.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_classic_opts.cc.o.d"
  "/root/repo/tests/test_compiler.cc" "tests/CMakeFiles/lbp_tests.dir/test_compiler.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_compiler.cc.o.d"
  "/root/repo/tests/test_counted_loop.cc" "tests/CMakeFiles/lbp_tests.dir/test_counted_loop.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_counted_loop.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/lbp_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_end_to_end.cc" "tests/CMakeFiles/lbp_tests.dir/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_end_to_end.cc.o.d"
  "/root/repo/tests/test_engine_differential.cc" "tests/CMakeFiles/lbp_tests.dir/test_engine_differential.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_engine_differential.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/lbp_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_if_convert.cc" "tests/CMakeFiles/lbp_tests.dir/test_if_convert.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_if_convert.cc.o.d"
  "/root/repo/tests/test_inliner.cc" "tests/CMakeFiles/lbp_tests.dir/test_inliner.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_inliner.cc.o.d"
  "/root/repo/tests/test_interpreter.cc" "tests/CMakeFiles/lbp_tests.dir/test_interpreter.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_interpreter.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/lbp_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_loop_buffer.cc" "tests/CMakeFiles/lbp_tests.dir/test_loop_buffer.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_loop_buffer.cc.o.d"
  "/root/repo/tests/test_loop_transforms.cc" "tests/CMakeFiles/lbp_tests.dir/test_loop_transforms.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_loop_transforms.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/lbp_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_modulo.cc" "tests/CMakeFiles/lbp_tests.dir/test_modulo.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_modulo.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/lbp_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_promote.cc" "tests/CMakeFiles/lbp_tests.dir/test_promote.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_promote.cc.o.d"
  "/root/repo/tests/test_reassociate.cc" "tests/CMakeFiles/lbp_tests.dir/test_reassociate.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_reassociate.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/lbp_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/lbp_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/lbp_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_slot_predication.cc" "tests/CMakeFiles/lbp_tests.dir/test_slot_predication.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_slot_predication.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/lbp_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_unroll.cc" "tests/CMakeFiles/lbp_tests.dir/test_unroll.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_unroll.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/lbp_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
