#include "obs/history.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace lbp
{
namespace obs
{

namespace
{

/** Escape one raw key segment for use inside a flattened key. */
std::string
escapeSegment(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '.')
            out += '\\';
        out += c;
    }
    return out;
}

/** The last segment of a flattened key, unescaped. */
std::string
lastSegment(const std::string &key)
{
    // Find the last '.' not preceded by an odd run of backslashes.
    std::size_t cut = std::string::npos;
    for (std::size_t i = 0; i < key.size(); ++i) {
        if (key[i] == '\\') {
            ++i; // skip the escaped character
            continue;
        }
        if (key[i] == '.')
            cut = i;
    }
    const std::string seg =
        cut == std::string::npos ? key : key.substr(cut + 1);
    std::string out;
    for (std::size_t i = 0; i < seg.size(); ++i) {
        if (seg[i] == '\\' && i + 1 < seg.size())
            ++i;
        out += seg[i];
    }
    return out;
}

bool
isIdentityRoot(const std::string &key)
{
    return key == "machine" || key == "git_sha" ||
           key == "schema_version" || key == "meta" ||
           key == "history_schema";
}

void
flattenInto(const Json &v, const std::string &prefix,
            std::vector<std::pair<std::string, Json>> &out)
{
    switch (v.kind()) {
      case Json::Kind::Object:
        for (const auto &kv : v.members()) {
            if (prefix.empty() && isIdentityRoot(kv.first))
                continue;
            // Histogram bin arrays are raw distribution data; the
            // longitudinal signal is their quantile summary, which is
            // flattened alongside.
            if (kv.first == "bins" &&
                kv.second.kind() == Json::Kind::Array)
                continue;
            flattenInto(kv.second,
                        flatJoin(prefix, escapeSegment(kv.first)),
                        out);
        }
        break;
      case Json::Kind::Array: {
        const auto &items = v.items();
        for (std::size_t i = 0; i < items.size(); ++i)
            flattenInto(items[i],
                        flatJoin(prefix, std::to_string(i)), out);
        break;
      }
      default:
        out.emplace_back(prefix, v);
        break;
    }
}

double
median(std::vector<double> xs)
{
    LBP_ASSERT(!xs.empty(), "median of empty sample");
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * Is this leaf a poisoned (NaN/inf) value? On disk it is JSON
 * `null`; an in-memory dump still holds the non-finite double.
 */
bool
nonFiniteLeaf(const Json &v)
{
    if (v.kind() == Json::Kind::Null)
        return true;
    return v.isNumber() && !std::isfinite(v.asDouble());
}

} // namespace

std::string
flatJoin(const std::string &prefix, const std::string &segment)
{
    return prefix.empty() ? segment : prefix + "." + segment;
}

std::vector<std::pair<std::string, Json>>
flattenLeaves(const Json &doc)
{
    std::vector<std::pair<std::string, Json>> out;
    flattenInto(doc, "", out);
    return out;
}

std::string
docSource(const Json &doc)
{
    if (const Json *b = doc.find("bench"))
        if (b->kind() == Json::Kind::String)
            return b->asString();
    if (doc.find("metrics")) {
        if (const Json *meta = doc.find("meta"))
            if (const Json *w = meta->find("workload"))
                if (w->kind() == Json::Kind::String)
                    return "registry:" + w->asString();
        return "registry";
    }
    return "doc";
}

const Json *
HistoryRecord::find(const std::string &key) const
{
    for (const auto &kv : values)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

HistoryRecord
makeHistoryRecord(const Json &doc, const std::string &sourceOverride)
{
    HistoryRecord rec;
    rec.source =
        sourceOverride.empty() ? docSource(doc) : sourceOverride;
    if (const Json *sha = doc.find("git_sha"))
        rec.gitSha = sha->kind() == Json::Kind::String
                         ? sha->asString()
                         : gitSha();
    else
        rec.gitSha = gitSha();
    if (const Json *m = doc.find("machine"))
        rec.machine = *m;
    for (auto &kv : flattenLeaves(doc))
        if (classifyKey(kv.first) != KeyClass::PerPoint)
            rec.values.push_back(std::move(kv));
    return rec;
}

Json
historyRecordToJson(const HistoryRecord &rec)
{
    Json j = Json::object();
    j.set("history_schema", Json::integer(rec.schema));
    j.set("git_sha", Json::str(rec.gitSha));
    j.set("source", Json::str(rec.source));
    if (rec.machine.kind() != Json::Kind::Null)
        j.set("machine", rec.machine);
    Json values = Json::object();
    for (const auto &kv : rec.values)
        values.set(kv.first, kv.second);
    j.set("values", std::move(values));
    return j;
}

bool
historyRecordFromJson(const Json &line, HistoryRecord &rec,
                      std::string &error)
{
    const Json *schema = line.find("history_schema");
    if (!schema || !schema->isNumber()) {
        error = "record lacks history_schema";
        return false;
    }
    rec.schema = static_cast<int>(schema->asInt());
    if (rec.schema > kHistorySchemaVersion) {
        error = "history_schema " + std::to_string(rec.schema) +
                " newer than supported " +
                std::to_string(kHistorySchemaVersion);
        return false;
    }
    if (const Json *sha = line.find("git_sha"))
        if (sha->kind() == Json::Kind::String)
            rec.gitSha = sha->asString();
    if (const Json *src = line.find("source"))
        if (src->kind() == Json::Kind::String)
            rec.source = src->asString();
    if (const Json *m = line.find("machine"))
        rec.machine = *m;
    const Json *values = line.find("values");
    if (!values || values->kind() != Json::Kind::Object) {
        error = "record lacks a values object";
        return false;
    }
    rec.values.clear();
    for (const auto &kv : values->members())
        rec.values.emplace_back(kv.first, kv.second);
    return true;
}

bool
appendHistory(const std::string &path, const HistoryRecord &rec,
              std::string &error)
{
    std::ofstream os(path, std::ios::app);
    if (!os) {
        error = "cannot open '" + path + "' for appending";
        return false;
    }
    historyRecordToJson(rec).writeCompact(os);
    os << "\n";
    if (!os.good()) {
        error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

std::vector<HistoryRecord>
loadHistory(const std::string &path, std::string &error)
{
    std::vector<HistoryRecord> out;
    error.clear();
    std::ifstream is(path);
    if (!is)
        return out; // absent store == empty history
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::string parseError;
        const Json j = Json::parse(line, parseError);
        HistoryRecord rec;
        if (!parseError.empty() ||
            !historyRecordFromJson(j, rec, parseError)) {
            error = path + ":" + std::to_string(lineNo) + ": " +
                    parseError;
            return out;
        }
        out.push_back(std::move(rec));
    }
    return out;
}

bool
pruneHistory(const std::string &path, int keep, std::string &error,
             int *removed)
{
    if (removed)
        *removed = 0;
    if (keep < 1) {
        error = "keep must be >= 1, got " + std::to_string(keep);
        return false;
    }
    std::vector<HistoryRecord> recs = loadHistory(path, error);
    if (!error.empty())
        return false;

    // Count per source, then keep each record only while its source
    // still has more than `keep` newer records remaining. One reverse
    // pass (newest first) makes "newest N" natural.
    std::map<std::string, int> kept;
    std::vector<char> keepFlag(recs.size(), 0);
    for (std::size_t i = recs.size(); i-- > 0;) {
        if (kept[recs[i].source] < keep) {
            ++kept[recs[i].source];
            keepFlag[i] = 1;
        }
    }

    // Rewrite atomically: temp file beside the store, then rename.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        for (std::size_t i = 0; i < recs.size(); ++i) {
            if (!keepFlag[i])
                continue;
            historyRecordToJson(recs[i]).writeCompact(os);
            os << "\n";
        }
        if (!os.good()) {
            error = "write to '" + tmp + "' failed";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "cannot rename '" + tmp + "' over '" + path + "'";
        return false;
    }
    if (removed) {
        int k = 0;
        for (char f : keepFlag)
            k += f;
        *removed = static_cast<int>(recs.size()) - k;
    }
    return true;
}

/** True if any unescaped '.'-segment of the key is all digits —
 * i.e. the leaf sits under a JSON array index. */
static bool
hasNumericSegment(const std::string &key)
{
    bool inSeg = false, allDigits = true;
    for (std::size_t i = 0; i <= key.size(); ++i) {
        if (i == key.size() || key[i] == '.') {
            if (inSeg && allDigits)
                return true;
            inSeg = false;
            allDigits = true;
            continue;
        }
        if (key[i] == '\\') {
            ++i; // escaped char: part of the segment, never a digit
            allDigits = false;
            inSeg = true;
            continue;
        }
        inSeg = true;
        if (key[i] < '0' || key[i] > '9')
            allDigits = false;
    }
    return false;
}

KeyClass
classifyKey(const std::string &key)
{
    const std::string seg = lastSegment(key);
    if (seg == "threads" || seg == "description" || key == "bench")
        return KeyClass::Identity;
    // Host PMU readings vary per machine and per run; never gate
    // them. The trailing dot matters: "build.pmu" (the config bool)
    // must stay Exact, so only the "pmu." namespaces match — either
    // as the key's own prefix (bench docs flatten plain dotted) or as
    // the unescaped metric name's prefix (registry dumps flatten each
    // metric to one escaped segment).
    if (key.rfind("pmu.", 0) == 0 || seg.rfind("pmu.", 0) == 0)
        return KeyClass::PerPoint;
    // Per-workload drill-down blocks (e.g. the sim_fastpath
    // trace_cache.per_workload.* coverage split) are recorded but
    // never gated: the gated signal is the aggregate, and holding
    // each workload's leaf exactly would turn every workload add or
    // rename into a history break.
    if (key.find(".per_workload.") != std::string::npos)
        return KeyClass::PerPoint;
    // Bench docs use camelCase "...Ms" leaves; registry phase timers
    // are gauges named "compile.phase.NN_stage.ms", which flatten to
    // ONE escaped segment — so match ".ms" as a suffix of the
    // unescaped segment, not as a segment of its own.
    auto endsWith = [&](const char *suf) {
        const size_t n = std::strlen(suf);
        return seg.size() >= n &&
               seg.compare(seg.size() - n, n, suf) == 0;
    };
    if (seg == "ms" || seg == "speedup" || endsWith(".ms") ||
        endsWith(".speedup") || endsWith("Ms"))
        return hasNumericSegment(key) ? KeyClass::PerPoint
                                      : KeyClass::Timing;
    return KeyClass::Exact;
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Ok: return "ok";
      case Verdict::Improved: return "improved";
      case Verdict::Regressed: return "REGRESSED";
      case Verdict::ExactMismatch: return "EXACT-MISMATCH";
      case Verdict::NonFinite: return "NON-FINITE";
      case Verdict::MissingKey: return "MISSING-KEY";
      case Verdict::NewKey: return "new-key";
      case Verdict::NoBaseline: return "no-baseline";
    }
    return "?";
}

bool
verdictFails(Verdict v)
{
    return v == Verdict::Regressed || v == Verdict::ExactMismatch ||
           v == Verdict::NonFinite || v == Verdict::MissingKey;
}

bool
CheckReport::failed() const
{
    for (const auto &kv : verdicts)
        if (verdictFails(kv.verdict))
            return true;
    return false;
}

namespace
{

/** Judge one timing-class key against its window. */
KeyVerdict
judgeTiming(const std::string &key, const Json &cur,
            const std::vector<const HistoryRecord *> &records,
            const CheckPolicy &policy)
{
    KeyVerdict kv;
    kv.key = key;
    kv.cls = KeyClass::Timing;

    if (nonFiniteLeaf(cur)) {
        // Null on disk, or a still-in-memory NaN/inf double: either
        // way NaN compares false against every threshold, so without
        // this check a poisoned gauge would sail through as Ok.
        kv.verdict = Verdict::NonFinite;
        kv.detail = "current value is non-finite (NaN/inf gauge)";
        return kv;
    }
    if (!cur.isNumber()) {
        // A timing-suffixed string is nonsense; treat exact-style.
        kv.verdict = Verdict::Ok;
        kv.detail = "non-numeric timing key ignored";
        return kv;
    }
    kv.current = cur.asDouble();

    // Newest-first finite samples, capped at the window size.
    std::vector<double> window;
    for (auto it = records.rbegin();
         it != records.rend() &&
         static_cast<int>(window.size()) < policy.window;
         ++it) {
        const Json *v = (*it)->find(key);
        if (v && v->isNumber() && std::isfinite(v->asDouble()))
            window.push_back(v->asDouble());
    }
    kv.samples = static_cast<int>(window.size());
    if (window.empty()) {
        kv.verdict = Verdict::NoBaseline;
        return kv;
    }

    const double m = median(window);
    std::vector<double> devs;
    devs.reserve(window.size());
    for (double x : window)
        devs.push_back(std::fabs(x - m));
    const double mad = median(devs);

    kv.baseline = m;
    kv.spread = mad;
    kv.threshold = std::max(
        {policy.absTol, policy.relTol * std::fabs(m),
         policy.madK * 1.4826 * mad});

    // Direction of badness: speedups regress downward, everything
    // else (milliseconds) regresses upward.
    const std::string seg = lastSegment(key);
    const bool lowerIsWorse =
        seg == "speedup" ||
        (seg.size() >= 8 &&
         seg.compare(seg.size() - 8, 8, ".speedup") == 0);
    const double delta = kv.current - m;
    const double worse = lowerIsWorse ? -delta : delta;

    std::ostringstream d;
    d << fmt(kv.current) << " vs median " << fmt(m) << " of "
      << kv.samples << " (MAD " << fmt(mad) << ", threshold "
      << fmt(kv.threshold) << ")";
    kv.detail = d.str();

    if (worse > kv.threshold)
        kv.verdict = Verdict::Regressed;
    else if (-worse > kv.threshold)
        kv.verdict = Verdict::Improved;
    else
        kv.verdict = Verdict::Ok;
    return kv;
}

/** Judge one exact-class key against the latest record holding it. */
KeyVerdict
judgeExact(const std::string &key, const Json &cur,
           const std::vector<const HistoryRecord *> &records)
{
    KeyVerdict kv;
    kv.key = key;
    kv.cls = KeyClass::Exact;

    if (nonFiniteLeaf(cur)) {
        kv.verdict = Verdict::NonFinite;
        kv.detail = "current value is non-finite (NaN/inf gauge)";
        return kv;
    }
    if (cur.isNumber())
        kv.current = cur.asDouble();

    const Json *base = nullptr;
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (const Json *v = (*it)->find(key)) {
            base = v;
            break;
        }
    }
    if (!base) {
        kv.verdict = Verdict::NoBaseline;
        return kv;
    }
    kv.samples = 1;
    if (base->isNumber())
        kv.baseline = base->asDouble();

    if (nonFiniteLeaf(*base)) {
        // The store holds a poisoned sample; a now-finite value is a
        // recovery, not a regression.
        kv.verdict = Verdict::Ok;
        kv.detail = "recovered from non-finite baseline";
        return kv;
    }
    if (*base == cur) {
        kv.verdict = Verdict::Ok;
        return kv;
    }
    kv.verdict = Verdict::ExactMismatch;
    kv.detail = cur.dump() + " vs latest " + base->dump();
    return kv;
}

} // namespace

CheckReport
checkAgainstHistory(const std::vector<HistoryRecord> &history,
                    const Json &currentDoc, const CheckPolicy &policy)
{
    CheckReport report;
    report.source = docSource(currentDoc);

    std::vector<const HistoryRecord *> records;
    for (const auto &rec : history)
        if (rec.source == report.source)
            records.push_back(&rec);
    report.baselineRecords = static_cast<int>(records.size());

    const auto current = flattenLeaves(currentDoc);

    for (const auto &kv : current) {
        const KeyClass cls = classifyKey(kv.first);
        if (cls == KeyClass::Identity || cls == KeyClass::PerPoint)
            continue;
        KeyVerdict v =
            cls == KeyClass::Timing
                ? judgeTiming(kv.first, kv.second, records, policy)
                : judgeExact(kv.first, kv.second, records);
        if (v.verdict == Verdict::NoBaseline && !records.empty())
            v.verdict = Verdict::NewKey;
        report.verdicts.push_back(std::move(v));
    }

    // Keys the latest same-source record holds but the current doc
    // lost. Older records' keys may be legitimately obsolete; only
    // the newest defines the expected shape.
    if (!records.empty()) {
        const HistoryRecord &latest = *records.back();
        for (const auto &kv : latest.values) {
            const KeyClass cls = classifyKey(kv.first);
            if (cls == KeyClass::Identity || cls == KeyClass::PerPoint)
                continue;
            bool present = false;
            for (const auto &ckv : current) {
                if (ckv.first == kv.first) {
                    present = true;
                    break;
                }
            }
            if (!present) {
                KeyVerdict v;
                v.key = kv.first;
                v.cls = classifyKey(kv.first);
                v.verdict = Verdict::MissingKey;
                v.detail = "present in latest record, absent now";
                report.verdicts.push_back(std::move(v));
            }
        }
    }
    return report;
}

void
CheckReport::print(std::ostream &os, bool verbose) const
{
    os << "history check: source=" << source << ", "
       << baselineRecords << " baseline record(s), "
       << verdicts.size() << " key(s)\n";
    int counts[8] = {};
    for (const auto &kv : verdicts)
        ++counts[static_cast<int>(kv.verdict)];
    for (const auto &kv : verdicts) {
        const bool interesting = verdictFails(kv.verdict) ||
                                 kv.verdict == Verdict::Improved;
        if (!interesting && !verbose)
            continue;
        os << "  " << verdictName(kv.verdict) << "  " << kv.key;
        if (!kv.detail.empty())
            os << ": " << kv.detail;
        os << "\n";
    }
    os << "  summary:";
    static const Verdict order[] = {
        Verdict::Regressed, Verdict::ExactMismatch,
        Verdict::NonFinite, Verdict::MissingKey, Verdict::Improved,
        Verdict::NewKey,    Verdict::NoBaseline, Verdict::Ok};
    for (Verdict v : order) {
        const int n = counts[static_cast<int>(v)];
        if (n)
            os << " " << verdictName(v) << "=" << n;
    }
    os << "\n"
       << "verdict: " << (failed() ? "FAIL" : "PASS") << "\n";
}

Json
CheckReport::toJson() const
{
    Json root = Json::object();
    root.set("history_schema", Json::integer(kHistorySchemaVersion));
    stampVersion(root);
    root.set("source", Json::str(source));
    root.set("baseline_records", Json::integer(baselineRecords));
    root.set("failed", Json::boolean(failed()));
    Json arr = Json::array();
    for (const auto &kv : verdicts) {
        // The machine-readable form carries only non-Ok verdicts;
        // the Ok count is recoverable from totals and keeps the
        // document small.
        if (kv.verdict == Verdict::Ok)
            continue;
        Json v = Json::object();
        v.set("key", Json::str(kv.key));
        v.set("class", Json::str(kv.cls == KeyClass::Timing
                                     ? "timing"
                                     : "exact"));
        v.set("verdict", Json::str(verdictName(kv.verdict)));
        v.set("baseline", Json::number(kv.baseline));
        v.set("spread", Json::number(kv.spread));
        v.set("current", Json::number(kv.current));
        v.set("threshold", Json::number(kv.threshold));
        v.set("samples", Json::integer(kv.samples));
        if (!kv.detail.empty())
            v.set("detail", Json::str(kv.detail));
        arr.push(std::move(v));
    }
    root.set("verdicts", std::move(arr));
    root.set("keys_checked",
             Json::integer(static_cast<std::int64_t>(
                 verdicts.size())));
    return root;
}

} // namespace obs
} // namespace lbp
