/**
 * @file
 * Fundamental identifier types shared across the IR.
 */

#ifndef LBP_IR_TYPES_HH
#define LBP_IR_TYPES_HH

#include <cstdint>
#include <limits>

namespace lbp
{

/** Virtual general register id (unlimited supply pre-allocation). */
using RegId = std::uint32_t;

/** Virtual predicate register id. 0 is reserved for "no guard". */
using PredId = std::uint32_t;

/** Basic block id, an index into Function::blocks. */
using BlockId = std::uint32_t;

/** Function id, an index into Program::functions. */
using FuncId = std::uint32_t;

/** Operation id, unique within a function. */
using OpId = std::uint32_t;

constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();
constexpr FuncId kNoFunc = std::numeric_limits<FuncId>::max();
constexpr PredId kNoPred = 0;
constexpr int kNoSlot = -1;

/** Issue width of the modeled VLIW (Figure 6 of the paper). */
constexpr int kIssueWidth = 8;

} // namespace lbp

#endif // LBP_IR_TYPES_HH
