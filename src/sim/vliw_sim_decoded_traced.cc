/**
 * @file
 * Traced instantiation of the decoded fast-path executor. Kept in its
 * own translation unit so the emission-carrying stamp never competes
 * with the untraced hot path for the inliner's budget (see
 * vliw_sim_decoded_body.hh). Compiles to nothing under -DLBP_TRACE=0,
 * where the dispatcher never references the Traced=true stamp.
 */

#include "obs/trace.hh"

#if LBP_TRACE

#include "sim/vliw_sim_decoded_body.hh"

namespace lbp
{

template std::vector<std::int64_t>
VliwSim::callFunctionDecodedImpl<true>(
    FuncId f, const std::vector<std::int64_t> &args);

} // namespace lbp

#endif // LBP_TRACE
