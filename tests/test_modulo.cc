/**
 * @file
 * Iterative-modulo-scheduler tests: II lower bounds (ResMII/RecMII),
 * legality under modulo constraints, MVE factors, and random-loop
 * property sweeps.
 */

#include <gtest/gtest.h>

#include "analysis/loop_info.hh"
#include "ir/builder.hh"
#include "sched/modulo_scheduler.hh"
#include "support/random.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Build a simple loop body with the given generator and return the
 *  loop header's block. */
const BasicBlock &
makeLoopBody(Program &prog, const std::function<void(IRBuilder &)> &gen)
{
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    BlockId head = kNoBlock;
    head = b.forLoop(0, 100, 1, [&](RegId) { gen(b); });
    b.ret({});
    return prog.functions[f].blocks[head];
}

TEST(Modulo, ResMIIByMemoryUnits)
{
    // Seven independent loads per iteration / 3 MEM units -> >= 3.
    Program prog;
    prog.allocData(256);
    const BasicBlock &bb = makeLoopBody(prog, [&](IRBuilder &b) {
        const RegId p = b.iconst(0);
        for (int i = 0; i < 7; ++i)
            b.loadW(R(p), I(4 * i));
    });
    Machine machine;
    EXPECT_GE(computeResMII(bb, machine), 3);
    ModuloResult info;
    SchedBlock sb = moduloScheduleLoop(bb, machine, {}, &info);
    ASSERT_TRUE(sb.valid);
    EXPECT_TRUE(sb.pipelined);
    EXPECT_GE(sb.ii, 3);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
}

TEST(Modulo, RecMIIByAccumulatorChain)
{
    // acc = acc * 3 gives a latency-2 recurrence -> II >= 2.
    Program prog;
    Program p2;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(1);
    const BlockId head = b.forLoop(0, 50, 1, [&](RegId) {
        b.mulTo(acc, R(acc), I(3));
        b.binTo(Opcode::AND, acc, R(acc), I(0xffff));
    });
    b.ret({R(acc)});
    (void)p2;
    const BasicBlock &bb = prog.functions[f].blocks[head];
    Machine machine;
    ModuloResult info;
    SchedBlock sb = moduloScheduleLoop(bb, machine, {}, &info);
    ASSERT_TRUE(sb.valid);
    EXPECT_GE(info.recMII, 3); // mul(2) + and(1) cycle
    EXPECT_GE(sb.ii, info.recMII);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
}

TEST(Modulo, PipeliningBeatsListLength)
{
    // A loop with ILP: II should be well below the schedule length.
    Program prog;
    prog.allocData(1024);
    const BasicBlock &bb = makeLoopBody(prog, [&](IRBuilder &b) {
        const RegId p = b.iconst(0);
        const RegId v0 = b.loadW(R(p), I(0));
        const RegId v1 = b.loadW(R(p), I(4));
        const RegId m0 = b.mul(R(v0), I(3));
        const RegId m1 = b.mul(R(v1), I(5));
        const RegId s = b.add(R(m0), R(m1));
        b.storeW(R(p), I(512), R(s));
    });
    Machine machine;
    SchedBlock sb = moduloScheduleLoop(bb, machine);
    ASSERT_TRUE(sb.valid && sb.pipelined);
    EXPECT_LT(sb.ii, sb.lengthCycles());
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
}

TEST(Modulo, MveFactorFromLongLifetimes)
{
    // load(3) -> mul(2) -> chain with small II: lifetimes exceed II,
    // so the MVE factor (and buffer image) must grow.
    Program prog;
    prog.allocData(1024);
    const BasicBlock &bb = makeLoopBody(prog, [&](IRBuilder &b) {
        const RegId p = b.iconst(0);
        const RegId v = b.loadW(R(p), I(0));
        const RegId m = b.mul(R(v), I(7));
        const RegId s = b.shra(R(m), I(2));
        b.storeW(R(p), I(512), R(s));
    });
    Machine machine;
    SchedBlock sb = moduloScheduleLoop(bb, machine);
    ASSERT_TRUE(sb.valid && sb.pipelined);
    if (sb.ii < 4) {
        EXPECT_GT(sb.mveFactor, 1);
        EXPECT_EQ(sb.imageOps(), sb.sizeOps() * sb.mveFactor);
    }
}

TEST(Modulo, CrossIterationLatencyModuloII)
{
    // Loop-carried true dependence: validator checks distance-1 edges
    // against cycle + II * 1.
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId carry = b.iconst(0);
    const BlockId head = b.forLoop(0, 64, 1, [&](RegId i) {
        const RegId t = b.mul(R(carry), I(3)); // reads last iter's carry
        b.binTo(Opcode::ADD, carry, R(t), R(i));
    });
    b.ret({R(carry)});
    const BasicBlock &bb = prog.functions[f].blocks[head];
    Machine machine;
    SchedBlock sb = moduloScheduleLoop(bb, machine);
    ASSERT_TRUE(sb.valid);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
    EXPECT_GE(sb.ii, 3);
}

TEST(Modulo, FallbackOnOversubscription)
{
    // An absurd II cap forces failure -> invalid result, caller falls
    // back to list scheduling.
    Program prog;
    prog.allocData(256);
    const BasicBlock &bb = makeLoopBody(prog, [&](IRBuilder &b) {
        const RegId p = b.iconst(0);
        for (int i = 0; i < 6; ++i)
            b.loadW(R(p), I(4 * i));
    });
    Machine machine;
    ModuloOptions opts;
    opts.maxII = 1; // ResMII is 2: cannot succeed
    SchedBlock sb = moduloScheduleLoop(bb, machine, opts);
    EXPECT_FALSE(sb.valid);
}

/** Random loop bodies must always produce valid modulo schedules. */
TEST(Modulo, RandomLoopProperty)
{
    Rng rng(999);
    Machine machine;
    for (int trial = 0; trial < 40; ++trial) {
        Program prog;
        prog.allocData(4096);
        const FuncId f = prog.newFunction("f");
        IRBuilder b(prog, f);
        std::vector<RegId> carried;
        for (int i = 0; i < 3; ++i)
            carried.push_back(b.iconst(i));
        const BlockId head = b.forLoop(0, 32, 1, [&](RegId idx) {
            std::vector<RegId> pool = carried;
            pool.push_back(idx);
            const int n = 3 + static_cast<int>(rng.nextBelow(20));
            for (int i = 0; i < n; ++i) {
                const RegId a = pool[rng.nextBelow(pool.size())];
                const RegId c = pool[rng.nextBelow(pool.size())];
                const double roll = rng.nextDouble();
                if (roll < 0.2) {
                    const RegId addr = b.and_(R(a), I(1023));
                    pool.push_back(b.loadW(R(addr), I(0)));
                } else if (roll < 0.3) {
                    const RegId addr = b.and_(R(a), I(1023));
                    b.storeW(R(addr), I(2048), R(c));
                } else if (roll < 0.45) {
                    pool.push_back(b.mul(R(a), R(c)));
                } else if (roll < 0.6) {
                    // Update a carried register (creates recurrences).
                    const RegId t = carried[rng.nextBelow(3)];
                    b.binTo(Opcode::ADD, t, R(t), R(a));
                } else {
                    pool.push_back(b.xor_(R(a), R(c)));
                }
            }
        });
        b.ret({R(carried[0])});
        const BasicBlock &bb = prog.functions[f].blocks[head];
        ModuloResult info;
        SchedBlock sb = moduloScheduleLoop(bb, machine, {}, &info);
        ASSERT_TRUE(sb.valid) << "trial " << trial;
        EXPECT_GE(sb.ii, info.resMII);
        EXPECT_GE(sb.ii, info.recMII);
        const auto errs = validateSchedule(bb, sb, machine);
        EXPECT_TRUE(errs.empty())
            << "trial " << trial << ": " << errs.front();
    }
}

} // namespace
} // namespace lbp
