#include "transform/reassociate.hh"

#include <map>
#include <set>

#include "analysis/liveness.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Opcodes that are associative and commutative over int64. */
bool
isAssoc(Opcode op)
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::MUL:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::MIN:
      case Opcode::MAX:
        return true;
      default:
        return false;
    }
}

struct Chain
{
    std::vector<size_t> links;   ///< op indices, program order
    std::vector<Operand> leaves; ///< non-chain operands
};

/**
 * Try to grow a chain starting at op @p start. Returns a chain of at
 * least 3 links (shorter chains gain nothing), or an empty one.
 */
Chain
findChain(const BasicBlock &bb, size_t start,
          const std::set<RegId> &liveOut,
          const std::vector<char> &consumed)
{
    Chain chain;
    const Opcode oc = bb.ops[start].op;
    const PredId guard = bb.ops[start].guard;

    size_t cur = start;
    while (true) {
        const Operation &op = bb.ops[cur];
        chain.links.push_back(cur);
        const RegId dst = op.dsts[0].asReg();

        // Find the unique in-block reader of dst after cur; it must
        // be the next link, and nothing else may read or write dst
        // in between.
        size_t reader = SIZE_MAX;
        bool ok = true;
        for (size_t j = cur + 1; j < bb.ops.size() && ok; ++j) {
            const Operation &later = bb.ops[j];
            if (later.readsReg(dst)) {
                if (reader != SIZE_MAX) {
                    ok = false; // second reader
                    break;
                }
                reader = j;
                // The reader terminates the search window only if it
                // also rewrites dst (accumulator form); otherwise
                // keep scanning for extra readers.
                if (later.writesReg(dst))
                    break;
            } else if (later.writesReg(dst)) {
                break; // dst re-killed; no more readers possible
            }
        }
        if (!ok || reader == SIZE_MAX)
            break;
        const Operation &next = bb.ops[reader];
        if (next.op != oc || next.guard != guard ||
            next.dsts.size() != 1 || !next.dsts[0].isReg() ||
            consumed[reader]) {
            break;
        }
        // Exactly one source of `next` is dst.
        const bool s0 = next.srcs[0].isReg() &&
                        next.srcs[0].asReg() == dst;
        const bool s1 = next.srcs[1].isReg() &&
                        next.srcs[1].asReg() == dst;
        if (s0 == s1)
            break; // both or neither
        // Intermediate dst must die here: not live-out, and the scan
        // above guaranteed no other readers.
        if (liveOut.count(dst) && !next.writesReg(dst))
            break;
        cur = reader;
    }

    if (chain.links.size() < 3) {
        chain.links.clear();
        return chain;
    }

    // Collect leaves and validate relocation: the rebuilt tree issues
    // at the last link's position, so no op between a leaf's chain
    // link and the last link may write that leaf, and no non-chain op
    // in the chain's span may read any chained destination.
    const size_t first = chain.links.front();
    const size_t last = chain.links.back();
    std::set<size_t> linkSet(chain.links.begin(), chain.links.end());

    std::set<RegId> chainDsts;
    for (size_t l : chain.links)
        chainDsts.insert(bb.ops[l].dsts[0].asReg());
    for (size_t j = first; j <= last; ++j) {
        if (linkSet.count(j))
            continue;
        for (RegId d : chainDsts) {
            if (bb.ops[j].readsReg(d) || bb.ops[j].writesReg(d)) {
                chain.links.clear();
                return chain;
            }
        }
    }

    for (size_t li = 0; li < chain.links.size(); ++li) {
        const size_t l = chain.links[li];
        const Operation &op = bb.ops[l];
        for (const auto &src : op.srcs) {
            // Skip the incoming-chain operand (previous link's dst),
            // except on the first link where both operands are
            // leaves.
            if (li > 0 && src.isReg() &&
                src.asReg() ==
                    bb.ops[chain.links[li - 1]].dsts[0].asReg()) {
                continue;
            }
            chain.leaves.push_back(src);
            if (!src.isReg())
                continue;
            // Leaf must be stable from its link through the last
            // link.
            for (size_t j = l; j <= last; ++j) {
                if (linkSet.count(j))
                    continue;
                if (bb.ops[j].writesReg(src.asReg())) {
                    chain.links.clear();
                    return chain;
                }
            }
            // A leaf cannot alias an intermediate chain destination
            // (intermediates have exactly one reader — the next
            // link), and aliasing the *final* destination (the
            // accumulator form) is safe: after the rebuild only the
            // final tree op writes it, after all leaf reads.
        }
    }
    return chain;
}

} // namespace

ReassociateStats
reassociate(Function &fn)
{
    ReassociateStats st;
    Liveness live(fn);
    for (auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        const std::set<RegId> &liveOut = live.liveOut(bb.id);
        std::vector<char> consumed(bb.ops.size(), 0);

        std::vector<Chain> chains;
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            const Operation &op = bb.ops[i];
            if (consumed[i] || !isAssoc(op.op))
                continue;
            if (op.dsts.size() != 1 || !op.dsts[0].isReg())
                continue;
            Chain c = findChain(bb, i, liveOut, consumed);
            if (c.links.empty())
                continue;
            for (size_t l : c.links)
                consumed[l] = 1;
            chains.push_back(std::move(c));
        }
        if (chains.empty())
            continue;

        // Rebuild: remove the chain links; at the last link's
        // position emit a balanced tree (pairwise-combine queue) with
        // fresh intermediate registers, final op writing the original
        // final destination.
        std::set<size_t> removed;
        std::map<size_t, std::vector<Operation>> insertAt;
        for (const auto &c : chains) {
            for (size_t l : c.links)
                removed.insert(l);
            const Operation &lastOp = bb.ops[c.links.back()];
            const Opcode oc = lastOp.op;
            const PredId guard = lastOp.guard;
            const RegId finalDst = lastOp.dsts[0].asReg();

            std::vector<Operand> queue = c.leaves;
            std::vector<Operation> tree;
            while (queue.size() > 2) {
                const Operand a = queue.front();
                queue.erase(queue.begin());
                const Operand b = queue.front();
                queue.erase(queue.begin());
                const RegId t = fn.newReg();
                Operation o = makeBinary(oc, t, a, b);
                o.guard = guard;
                o.id = fn.newOpId();
                tree.push_back(std::move(o));
                queue.push_back(Operand::reg(t));
            }
            LBP_ASSERT(queue.size() == 2, "tree underflow");
            Operation fin = makeBinary(oc, finalDst, queue[0],
                                       queue[1]);
            fin.guard = guard;
            fin.id = fn.newOpId();
            tree.push_back(std::move(fin));
            insertAt[c.links.back()] = std::move(tree);
            ++st.chainsRebalanced;
            st.opsInChains += static_cast<int>(c.links.size());
        }

        std::vector<Operation> out;
        out.reserve(bb.ops.size());
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            auto it = insertAt.find(i);
            if (it != insertAt.end()) {
                for (auto &o : it->second)
                    out.push_back(std::move(o));
                continue;
            }
            if (!removed.count(i))
                out.push_back(std::move(bb.ops[i]));
        }
        bb.ops = std::move(out);
    }
    return st;
}

ReassociateStats
reassociate(Program &prog)
{
    ReassociateStats st;
    for (auto &fn : prog.functions) {
        auto s = reassociate(fn);
        st.chainsRebalanced += s.chainsRebalanced;
        st.opsInChains += s.opsInChains;
    }
    return st;
}

} // namespace lbp
