/**
 * @file
 * Structural IR verifier. Run after construction and after every
 * transformation; any violation is a compiler bug (panics).
 */

#ifndef LBP_IR_VERIFIER_HH
#define LBP_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace lbp
{

/** Verification options. */
struct VerifyOptions
{
    /**
     * Before hyperblock formation, branches may only terminate blocks.
     * After, predicated side exits are legal mid-block.
     */
    bool allowInternalBranches = false;
};

/**
 * Check structural invariants of @p fn; returns a list of violation
 * messages (empty = OK).
 */
std::vector<std::string> verify(const Function &fn,
                                const VerifyOptions &opts = {});

/** Verify all functions of @p prog. */
std::vector<std::string> verify(const Program &prog,
                                const VerifyOptions &opts = {});

/** Panic with diagnostics if verification fails. */
void verifyOrDie(const Program &prog, const VerifyOptions &opts = {});
void verifyOrDie(const Function &fn, const VerifyOptions &opts = {});

} // namespace lbp

#endif // LBP_IR_VERIFIER_HH
