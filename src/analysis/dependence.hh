/**
 * @file
 * Data-dependence graph over the operations of a single block (or a
 * single-block loop body), with optional loop-carried edges for modulo
 * scheduling.
 *
 * Edge kinds: true (RAW), anti (WAR), output (WAW) on general
 * registers and predicates, memory ordering edges (no alias analysis —
 * stores conflict with all memory ops), and control edges keeping
 * branches ordered and last.
 */

#ifndef LBP_ANALYSIS_DEPENDENCE_HH
#define LBP_ANALYSIS_DEPENDENCE_HH

#include <cstdint>
#include <vector>

#include "ir/basic_block.hh"

namespace lbp
{

/** Dependence edge categories. */
enum class DepKind : std::uint8_t
{
    TRUE_, ANTI, OUTPUT, MEM, CONTROL
};

/** One dependence edge between block-local op indices. */
struct DepEdge
{
    int from = 0;
    int to = 0;
    DepKind kind = DepKind::TRUE_;
    /** Minimum issue-cycle separation. */
    int latency = 0;
    /** Iteration distance (0 = intra-iteration, 1 = loop carried). */
    int distance = 0;
};

/** Dependence graph over one block's operations. */
class DepGraph
{
  public:
    /**
     * Build the graph.
     * @param bb the block
     * @param loopCarried also add distance-1 edges (for a loop body)
     */
    DepGraph(const BasicBlock &bb, bool loopCarried);

    int numOps() const { return numOps_; }
    const std::vector<DepEdge> &edges() const { return edges_; }

    /** Successor edges of op @p i. */
    const std::vector<int> &succs(int i) const { return succIdx_[i]; }

    /** Predecessor edges of op @p i. */
    const std::vector<int> &preds(int i) const { return predIdx_[i]; }

    const DepEdge &edge(int e) const { return edges_[e]; }

    /**
     * Longest-path height of each op to any graph sink, counting only
     * distance-0 edges (the scheduling priority function).
     */
    std::vector<int> heights() const;

    /**
     * Recurrence-constrained minimum initiation interval: the maximum
     * over all dependence cycles of ceil(latency / distance). Computed
     * by iterative relaxation; only meaningful when built with
     * loopCarried = true.
     */
    int recMII() const;

  private:
    void addEdge(int from, int to, DepKind kind, int latency,
                 int distance);

    int numOps_ = 0;
    std::vector<DepEdge> edges_;
    std::vector<std::vector<int>> succIdx_, predIdx_;
};

} // namespace lbp

#endif // LBP_ANALYSIS_DEPENDENCE_HH
