#include "core/slot_predication.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/liveness.hh"
#include "obs/loop_report.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Locate every scheduled op: (cycle, bundle-op index). */
struct OpRef
{
    int cycle = 0;
    size_t buIdx = 0;
    size_t opIdx = 0;
};

} // namespace

bool
lowerBlockToSlots(const BasicBlock &irBlock, SchedBlock &sb,
                  const Machine &machine,
                  const std::vector<PredId> &externalPreds,
                  SlotLoweringStats &stats, int predQueueDepth)
{
    (void)irBlock;
    ++stats.blocksAttempted;

    const std::set<PredId> external(externalPreds.begin(),
                                    externalPreds.end());

    // Gather, per predicate: consumer (cycle, slot) pairs and define
    // positions. Consumers are guards on any op, including guards of
    // predicate defines.
    struct PredInfo
    {
        std::set<int> consumerSlots;
        int firstDef = INT32_MAX;
        int lastDef = INT32_MIN;
        int lastUse = INT32_MIN;
        std::vector<OpRef> defines;
    };
    std::map<PredId, PredInfo> preds;

    for (size_t bu = 0; bu < sb.bundles.size(); ++bu) {
        for (size_t oi = 0; oi < sb.bundles[bu].ops.size(); ++oi) {
            const SchedOp &so = sb.bundles[bu].ops[oi];
            const Operation &op = so.op;
            const int cycle = static_cast<int>(bu);
            if (op.guard != kNoPred) {
                PredInfo &pi = preds[op.guard];
                pi.consumerSlots.insert(so.slot);
                pi.lastUse = std::max(pi.lastUse, cycle);
            }
            if (op.op == Opcode::PRED_DEF) {
                for (const auto &d : op.dsts) {
                    if (!d.isPred())
                        continue;
                    PredInfo &pi = preds[d.asPred()];
                    pi.firstDef = std::min(pi.firstDef, cycle);
                    pi.lastDef = std::max(pi.lastDef, cycle);
                    pi.defines.push_back({cycle, bu, oi});
                }
            }
        }
    }
    if (preds.empty()) {
        ++stats.blocksLowered;
        return true; // nothing to lower
    }

    // Per-slot interval check: a slot's standing predicate is owned
    // by one logical predicate from its first define to its last
    // consumer; two predicates sharing a slot must not overlap.
    // Pipelined loops additionally bound the range by II (the next
    // iteration's define wraps around).
    struct Interval
    {
        PredId p;
        int lo, hi;
    };
    // Predicates whose live range reaches the next iteration's
    // define (range >= II in a pipelined kernel) cannot live in a
    // slot's standing predicate: the overlapped iteration would
    // clobber them mid-use. The paper flags this as the scheme's
    // liveness constraint and sketches "queuing a predicate to become
    // active at some future time" as future hardware; our model keeps
    // such predicates on the register-file fallback instead
    // (documented substitution), counted in the statistics.
    std::map<int, std::vector<Interval>> bySlot;
    std::set<PredId> keepInRegs;
    for (const auto &[p, pi] : preds) {
        if (pi.consumerSlots.empty())
            continue; // defined but unconsumed here (external only)
        if (pi.defines.empty()) {
            // Consumed but defined elsewhere: must stay in registers.
            ++stats.predsKeptInRegisters;
            keepInRegs.insert(p);
            continue;
        }
        const int lo = pi.firstDef;
        const int hi = std::max(pi.lastUse, pi.lastDef);
        // A per-slot activation queue (paper §7.3 future work) lets
        // the overlapped iterations' defines wait in the queue, so a
        // standing predicate may live up to (1 + depth) initiation
        // intervals.
        const int rangeLimit = sb.ii * (1 + predQueueDepth);
        if (sb.pipelined && hi - lo >= rangeLimit) {
            ++stats.predsRangeTooLong;
            keepInRegs.insert(p);
            continue;
        }
        if (sb.pipelined && hi - lo >= sb.ii)
            ++stats.predsQueued;
        for (int s : pi.consumerSlots)
            bySlot[s].push_back({p, lo, hi});
    }
    for (auto &[slot, ivs] : bySlot) {
        std::sort(ivs.begin(), ivs.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.lo < b.lo;
                  });
        for (size_t i = 1; i < ivs.size(); ++i) {
            if (ivs[i].lo <= ivs[i - 1].hi &&
                ivs[i].p != ivs[i - 1].p) {
                ++stats.blocksFailedConflict;
                return false;
            }
        }
    }

    // Plan destination rewrites per define op. Each logical pred dest
    // expands to its consumer-slot destinations (plus a register dest
    // if the predicate escapes the block). A define holds at most two
    // destinations; extras go to clone defines placed in free
    // PRED-capable slots of the same cycle.
    struct NewDest
    {
        PredDefKind kind;
        Operand dst;
    };
    // Free PRED slots per cycle.
    std::vector<std::set<int>> freePredSlots(sb.bundles.size());
    for (size_t bu = 0; bu < sb.bundles.size(); ++bu) {
        for (int s : machine.slotsFor(UnitClass::PRED))
            freePredSlots[bu].insert(s);
        for (const auto &so : sb.bundles[bu].ops)
            freePredSlots[bu].erase(so.slot);
    }

    struct DefRewrite
    {
        OpRef where;
        std::vector<NewDest> dests;
    };
    std::vector<DefRewrite> rewrites;

    // Walk defines in schedule order and expand their destinations.
    for (size_t bu = 0; bu < sb.bundles.size(); ++bu) {
        for (size_t oi = 0; oi < sb.bundles[bu].ops.size(); ++oi) {
            const SchedOp &so = sb.bundles[bu].ops[oi];
            if (so.op.op != Opcode::PRED_DEF)
                continue;
            DefRewrite rw;
            rw.where = {static_cast<int>(bu), bu, oi};
            const PredDefKind kinds[2] = {so.op.defKind0,
                                          so.op.defKind1};
            for (size_t di = 0; di < so.op.dsts.size(); ++di) {
                const Operand &d = so.op.dsts[di];
                if (!d.isPred()) {
                    rw.dests.push_back({kinds[di], d});
                    continue;
                }
                const PredId p = d.asPred();
                const auto &pi = preds.at(p);
                const bool inRegs = keepInRegs.count(p) != 0;
                if (!inRegs) {
                    for (int s : pi.consumerSlots) {
                        rw.dests.push_back(
                            {kinds[di], Operand::slot(s)});
                    }
                }
                if (inRegs || external.count(p)) {
                    // Keep a register-file copy: cross-block
                    // consumers or a live range too long for a
                    // standing predicate.
                    rw.dests.push_back({kinds[di], Operand::pred(p)});
                    if (external.count(p))
                        ++stats.predsKeptInRegisters;
                }
            }
            if (rw.dests.empty()) {
                // Define with no remaining destinations: neutralize.
                rw.dests.push_back(
                    {so.op.defKind0, so.op.dsts[0]});
            }
            rewrites.push_back(std::move(rw));
        }
    }

    // Check clone capacity: each clone needs a free PRED slot in the
    // define's cycle.
    for (const auto &rw : rewrites) {
        const int extra =
            std::max(0, (static_cast<int>(rw.dests.size()) + 1) / 2 - 1);
        if (extra >
            static_cast<int>(freePredSlots[rw.where.buIdx].size())) {
            ++stats.blocksFailedCapacity;
            return false;
        }
    }

    // Apply: rewrite defines (and clone as needed), set sensitivity
    // bits on consumers.
    for (auto &rw : rewrites) {
        Bundle &bundle = sb.bundles[rw.where.buIdx];
        Operation &op = bundle.ops[rw.where.opIdx].op;
        const Operation proto = op;

        auto setDests = [](Operation &o, const NewDest *a,
                           const NewDest *b) {
            o.dsts.clear();
            o.defKind0 = a->kind;
            o.dsts.push_back(a->dst);
            if (b) {
                o.defKind1 = b->kind;
                o.dsts.push_back(b->dst);
            } else {
                o.defKind1 = PredDefKind::NONE;
            }
        };

        setDests(op, &rw.dests[0],
                 rw.dests.size() > 1 ? &rw.dests[1] : nullptr);
        ++stats.definesRewritten;

        size_t next = 2;
        while (next < rw.dests.size()) {
            Operation clone = proto;
            clone.id = 0; // fresh (validator matches by id)
            setDests(clone, &rw.dests[next],
                     next + 1 < rw.dests.size() ? &rw.dests[next + 1]
                                                : nullptr);
            next += 2;
            LBP_ASSERT(!freePredSlots[rw.where.buIdx].empty(),
                       "clone capacity re-check failed");
            const int s = *freePredSlots[rw.where.buIdx].begin();
            freePredSlots[rw.where.buIdx].erase(s);
            bundle.ops.push_back({clone, s});
            ++stats.definesCloned;
        }
    }

    for (auto &bundle : sb.bundles) {
        for (auto &so : bundle.ops) {
            if (so.op.guard != kNoPred) {
                const auto it = preds.find(so.op.guard);
                if (it != preds.end() &&
                    !it->second.defines.empty() &&
                    !keepInRegs.count(so.op.guard)) {
                    so.op.sensitive = true;
                    ++stats.sensitiveOps;
                }
                // else: register-file predicate (externally defined
                // or range-limited) — keep the register guard
                // (mixed mode).
            }
        }
    }

    ++stats.blocksLowered;
    return true;
}

SlotLoweringStats
lowerProgramToSlots(const Program &prog, SchedProgram &code,
                    const Machine &machine, int predQueueDepth,
                    obs::LoopDecisionLog *log)
{
    SlotLoweringStats stats;
    for (const auto &fn : prog.functions) {
        // Predicates consumed in block B but defined in block A != B
        // must keep register routing. Approximate the escape set per
        // block as "predicates used in any *other* block".
        std::map<BlockId, std::set<PredId>> usedIn, definedIn;
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            for (const auto &op : bb.ops) {
                if (op.guard != kNoPred)
                    usedIn[bb.id].insert(op.guard);
                for (PredId p : Liveness::predDefs(op))
                    definedIn[bb.id].insert(p);
            }
        }
        for (auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            SchedBlock &sb = code.functions[fn.id].blocks[bb.id];
            if (!sb.valid || !sb.isLoopBody)
                continue;
            std::vector<PredId> external;
            for (PredId p : definedIn[bb.id]) {
                for (const auto &[other, uses] : usedIn) {
                    if (other != bb.id && uses.count(p)) {
                        external.push_back(p);
                        break;
                    }
                }
            }
            const int conflictsBefore = stats.blocksFailedConflict;
            const int capacityBefore = stats.blocksFailedCapacity;
            const bool ok = lowerBlockToSlots(bb, sb, machine, external,
                                              stats, predQueueDepth);
            if (log) {
                obs::LoopAttempt a;
                a.transform = "slot_lowering";
                a.opsBefore = a.opsAfter = bb.sizeOps();
                if (ok) {
                    a.applied = true;
                } else {
                    a.reason = obs::LoopReason::PredSlotsExhausted;
                    a.note =
                        stats.blocksFailedConflict > conflictsBefore
                            ? "slot conflict"
                        : stats.blocksFailedCapacity > capacityBefore
                            ? "clone capacity"
                            : "lowering failed";
                }
                log->addAttempt(fn.name + "/" + bb.name, std::move(a));
            }
        }
    }
    return stats;
}

} // namespace lbp
