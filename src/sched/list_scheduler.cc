#include "sched/list_scheduler.hh"

#include <algorithm>

#include "analysis/dependence.hh"
#include "support/logging.hh"

namespace lbp
{

SchedBlock
listScheduleBlock(const BasicBlock &bb, const Machine &machine)
{
    SchedBlock sb;
    sb.irBlock = bb.id;
    sb.valid = true;

    // Collect real op indices.
    std::vector<int> realOps;
    for (size_t i = 0; i < bb.ops.size(); ++i)
        if (bb.ops[i].op != Opcode::NOP)
            realOps.push_back(static_cast<int>(i));
    if (realOps.empty()) {
        return sb;
    }

    DepGraph dg(bb, /*loopCarried=*/false);
    const std::vector<int> heights = dg.heights();

    const int n = dg.numOps();
    std::vector<int> cycleOf(n, -1);
    std::vector<int> unscheduledPreds(n, 0);
    for (const auto &e : dg.edges()) {
        if (e.distance == 0)
            ++unscheduledPreds[e.to];
    }

    // NOPs are dropped from the schedule; release their dependence
    // successors immediately so nothing waits on them.
    std::vector<int> earliest(n, 0);
    for (int i = 0; i < n; ++i) {
        if (bb.ops[i].op != Opcode::NOP)
            continue;
        cycleOf[i] = 0;
        for (int eidx : dg.succs(i)) {
            const DepEdge &e = dg.edge(eidx);
            if (e.distance == 0)
                --unscheduledPreds[e.to];
        }
    }

    // Ready list management.
    std::vector<int> ready;
    for (int i = 0; i < n; ++i) {
        if (bb.ops[i].op == Opcode::NOP)
            continue;
        if (unscheduledPreds[i] == 0)
            ready.push_back(i);
    }

    int cycle = 0;
    int scheduled = 0;
    const int target =
        static_cast<int>(realOps.size());
    std::vector<Bundle> bundles;
    // Predicate-affinity ownership: first predicate whose consumer
    // lands in a slot owns it for the rest of the block.
    std::array<PredId, Machine::width> slotOwner{};
    slotOwner.fill(kNoPred);

    int guard = 0;
    while (scheduled < target && guard++ < 100000) {
        Bundle bu;
        std::vector<char> slotUsed(Machine::width, 0);

        // Candidates ready at this cycle, highest-priority first.
        std::vector<int> cands;
        for (int i : ready) {
            if (earliest[i] <= cycle)
                cands.push_back(i);
        }
        std::sort(cands.begin(), cands.end(), [&](int a, int b) {
            if (heights[a] != heights[b])
                return heights[a] > heights[b];
            return a < b; // stable: program order
        });

        for (int i : cands) {
            // Find a free capable slot. Predicated consumers prefer a
            // slot already owned by their guard predicate (and avoid
            // slots owned by other predicates): this is the
            // scheduler-side cooperation the slot-predication scheme
            // relies on (paper section 4.3).
            int slot = kNoSlot;
            const UnitClass uc = unitClassOf(bb.ops[i].op);
            const PredId guard = bb.ops[i].guard;
            const auto &slots = machine.slotsFor(uc);
            if (guard != kNoPred) {
                for (auto it = slots.rbegin(); it != slots.rend();
                     ++it) {
                    if (!slotUsed[*it] && slotOwner[*it] == guard) {
                        slot = *it;
                        break;
                    }
                }
                if (slot == kNoSlot) {
                    for (auto it = slots.rbegin(); it != slots.rend();
                         ++it) {
                        if (!slotUsed[*it] &&
                            slotOwner[*it] == kNoPred) {
                            slot = *it;
                            break;
                        }
                    }
                }
            }
            // Prefer the least-capable slots first so flexible ops
            // don't starve constrained ones: iterate the capability
            // list in reverse (specialized slots come first in it).
            if (slot == kNoSlot) {
                for (auto it = slots.rbegin(); it != slots.rend();
                     ++it) {
                    if (!slotUsed[*it]) {
                        slot = *it;
                        break;
                    }
                }
            }
            if (slot == kNoSlot)
                continue;
            if (guard != kNoPred && slotOwner[slot] == kNoPred)
                slotOwner[slot] = guard;
            slotUsed[slot] = 1;
            cycleOf[i] = cycle;
            bu.ops.push_back({bb.ops[i], slot});
            ++scheduled;
            ready.erase(std::remove(ready.begin(), ready.end(), i),
                        ready.end());
            // Release successors.
            for (int eidx : dg.succs(i)) {
                const DepEdge &e = dg.edge(eidx);
                if (e.distance != 0)
                    continue;
                earliest[e.to] = std::max(earliest[e.to],
                                          cycle + e.latency);
                if (--unscheduledPreds[e.to] == 0 &&
                    bb.ops[e.to].op != Opcode::NOP) {
                    ready.push_back(e.to);
                }
            }
        }

        // Keep ops within a bundle in program order for deterministic
        // execution semantics.
        std::sort(bu.ops.begin(), bu.ops.end(),
                  [](const SchedOp &a, const SchedOp &b) {
                      return a.op.id < b.op.id;
                  });
        bundles.push_back(std::move(bu));
        ++cycle;
    }
    LBP_ASSERT(scheduled == target, "list scheduler did not converge");

    // NOP-only successors of the last real op would leave trailing
    // empty bundles; trim them.
    while (!bundles.empty() && bundles.back().ops.empty())
        bundles.pop_back();
    sb.bundles = std::move(bundles);
    return sb;
}

} // namespace lbp
