file(REMOVE_RECURSE
  "CMakeFiles/example_postfilter_trace.dir/postfilter_trace.cpp.o"
  "CMakeFiles/example_postfilter_trace.dir/postfilter_trace.cpp.o.d"
  "example_postfilter_trace"
  "example_postfilter_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_postfilter_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
