/**
 * @file
 * The Table-1 benchmark set, written directly in the lbp IR. Each
 * builder returns a self-contained Program: entry function, worker
 * functions, initialized data memory, and a designated checksum
 * region. The loop structures (nesting depth, trip counts, body
 * sizes, internal control flow) are shaped to reproduce the per-
 * benchmark buffering behaviour the paper reports.
 */

#ifndef LBP_WORKLOADS_WORKLOADS_HH
#define LBP_WORKLOADS_WORKLOADS_HH

#include "ir/program.hh"

namespace lbp
{
namespace workloads
{

Program buildAdpcmEnc();
Program buildAdpcmDec();
Program buildG724Enc();
Program buildG724Dec();
Program buildJpegEnc();
Program buildJpegDec();
Program buildMpeg2Enc();
Program buildMpeg2Dec();
Program buildMpg123();
Program buildPgpEnc();
Program buildPgpDec();

/**
 * Standalone replica of g724dec's Post_Filter() for the Figure-5
 * buffer-trace experiment: one invocation, four outer iterations.
 */
Program buildPostFilterOnly();

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_WORKLOADS_HH
