/**
 * @file
 * Engine differential: the decoded fast-path executor must be
 * behaviorally indistinguishable from the reference interpreter —
 * every field of SimStats, including the per-loop counter vectors —
 * for every registry workload, under both predication
 * micro-architectures, at several buffer sizes.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "obs/publish.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

/**
 * Compare via the registry diff: on mismatch the failure message is a
 * field-by-field listing of every diverging metric (including per-loop
 * counters) plus the first diverging loop id — not just "stats
 * differ".
 */
void
expectIdentical(const SimStats &ref, const SimStats &dec,
                const std::string &what)
{
    const std::string diff = obs::diffSimStats(ref, dec);
    EXPECT_TRUE(diff.empty()) << what << "\n" << diff;
}

class EngineDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineDifferential, DecodedMatchesReference)
{
    Program prog = workloads::buildWorkload(GetParam());

    for (OptLevel lvl : {OptLevel::Traditional, OptLevel::Aggressive}) {
        for (PredMode mode : {PredMode::REGISTER, PredMode::SLOT}) {
            // REGISTER-mode simulation needs slot lowering off (the
            // two predication micro-architectures are exclusive).
            CompileOptions opts;
            opts.level = lvl;
            opts.slotLowering = mode == PredMode::SLOT;
            CompileResult cr;
            compileProgram(prog, opts, cr);
            for (int size : {32, 256, 1024}) {
                reallocateBuffers(cr, size);
                SimConfig sc;
                sc.bufferOps = size;
                sc.predMode = mode;
                sc.engine = SimEngine::REFERENCE;
                const SimStats ref = VliwSim(cr.code, sc).run();
                sc.engine = SimEngine::DECODED;
                const SimStats dec = VliwSim(cr.code, sc).run();
                EXPECT_EQ(ref.checksum, cr.goldenChecksum);
                expectIdentical(
                    ref, dec,
                    GetParam() + " level=" +
                        (lvl == OptLevel::Aggressive ? "aggr"
                                                     : "trad") +
                        " mode=" +
                        (mode == PredMode::SLOT ? "slot" : "reg") +
                        " size=" + std::to_string(size));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineDifferential,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace lbp
