/**
 * @file
 * Resident-loop trace cache for the decoded executor: the software
 * twin of the modeled loop buffer's replay mechanism.
 *
 * When the loop buffer reports a loop resident, the general decoded
 * path still re-walks the block table, re-checks fetch accounting and
 * re-dispatches every micro-op of every iteration. The trace cache
 * instead builds — once, at first replayed residency — a flattened
 * per-loop trace of the body bundles up to and including the backedge,
 * with per-op facts that are invariant for the whole activation baked
 * in (can the op ever be nullified; can the bundle commit its writes
 * directly), and then replays that trace iteration after iteration
 * until the loop's own exit, bulk-accounting the per-iteration
 * counters. Control is handed back to the general path exactly at the
 * bundle after the backedge (counted exit / while exit) or at the
 * EXEC resume point.
 *
 * Safety gating happens entirely at build time. The fast tier
 * qualifies a body whose sole control transfer is the loop's own
 * unguarded, non-sensitive backedge with every other op from the
 * straight-line set (predicate defines, loads/stores, moves/converts/
 * select, the ALU family); such traces replay whole iterations with
 * bulk-accounted counters. The predicated tier (the paper's own
 * if-conversion move applied to the replay engine itself) widens
 * capture to bodies whose extra control ops are side exits — guarded
 * or conditional BR/JUMPs leaving the loop — and to guarded
 * backedges: those traces keep the control ops in the op stream,
 * evaluate their predicates from live machine state per iteration,
 * and compile side exits into trace-exit checks that hand control
 * back to the dispatch loop at the exact architectural point (the
 * redirect target, with the same penalties and loop-context
 * cancellation the general path would apply). Still untraceable:
 * calls, nested loops, second backedges, slot-sensitive backedges —
 * each named by its own TraceBailoutReason so the scorecard keeps
 * saying which rule to widen next.
 *
 * Invalidation: when the loop buffer evicts a loop's image, the
 * trace dies with it (the hardware analogy: replay state cannot
 * outlive the image) and is rebuilt at the next residency.
 *
 * The replay loop itself is VliwSim::replayResident (trace_cache.cc) —
 * a member so it can touch the same state the executor body does; the
 * engine-differential test pins its SimStats bit-identical to both
 * the general decoded path and the reference interpreter.
 */

#ifndef LBP_SIM_TRACE_CACHE_HH
#define LBP_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/decoded.hh"

namespace lbp
{

/**
 * Why a buffered activation declined trace replay. Closed taxonomy:
 * every bailout the cache counts carries exactly one of these, so the
 * scorecard can say per loop *which* gating rule to widen next instead
 * of a bare count. Mirrors the loop-shape taxonomy of "Hardware
 * Support for Arbitrarily Complex Loop Structures" (PAPERS.md).
 *
 * None is the build verdict "traceable" and never counts as a bailout.
 * Unknown is the defensive fallback; nothing in the tree produces it
 * (the all-workloads trace-cache test asserts it stays zero). Stale is
 * deliberately NOT a reason: an evicted trace revalidates O(1) at the
 * next residency and replays (see LoopTrace::State::Stale), so
 * staleness never declines an activation.
 */
enum class TraceBailoutReason : std::uint8_t
{
    None,                  ///< traceable — not a bailout
    Unknown,               ///< unclassified (must stay unreachable)
    EmptyBody,             ///< head block invalid or bundle-less
    NoHeadBackedge,        ///< loop backedge not in the head block
    GuardedBackedge,       ///< guarded backedge, pred replay disabled
    SlotSensitiveBackedge, ///< backedge is slot-predicate sensitive
    CallInBody,            ///< body calls (or returns) — frame churn
    MultiControlOp,        ///< extra control op, pred replay disabled
    NestedLoop,            ///< body re-enters the loop machinery
    MultiBackedge,         ///< a second backedge to the head
    BelowEngageThreshold,  ///< counted trip < SimConfig::replayMinIters
    Count,
};

/** Stable lower-camel token for counters/columns ("guardedBackedge"). */
const char *traceBailoutReasonName(TraceBailoutReason r);

/**
 * Side-band trace-cache counters. Deliberately NOT part of SimStats:
 * the reference engine never replays, so folding these into the
 * differentially-compared stats would break the bit-identical
 * contract. Published as sim.trace_cache.* registry counters.
 */
struct TraceCacheStats
{
    std::uint64_t builds = 0;        ///< traces built (incl. rebuilds)
    std::uint64_t replays = 0;       ///< engagements
    std::uint64_t bailouts = 0;      ///< activations declined
    std::uint64_t invalidations = 0; ///< traces dropped on image eviction
    std::uint64_t replayedIterations = 0;
    std::uint64_t replayedOps = 0;   ///< ops issued from traces

    /**
     * The predicated-replay tier's share of the counters above, plus
     * its own exit taxonomy. Published as
     * sim.trace_cache.pred_replay.*; the fast tier's share is the
     * difference against the aggregate counters.
     */
    struct PredReplay
    {
        std::uint64_t builds = 0;     ///< predicated traces built
        std::uint64_t replays = 0;    ///< predicated engagements
        std::uint64_t iterations = 0; ///< full predicated iterations
        std::uint64_t ops = 0;        ///< ops issued predicated
        std::uint64_t sideExits = 0;  ///< replays ended by a taken exit
        /** Nullified-backedge hand-backs (activation stays live). */
        std::uint64_t backedgeFallthroughs = 0;
        /** Engagements that started at a nonzero trace bundle. */
        std::uint64_t midEngagements = 0;
    };
    PredReplay predReplay;

    /** Per-reason split of bailouts; sums exactly to bailouts. */
    std::uint64_t bailoutsBy[static_cast<std::size_t>(
        TraceBailoutReason::Count)] = {};

    struct PerLoop
    {
        std::uint64_t replays = 0;
        std::uint64_t iterations = 0;
        std::uint64_t ops = 0;       ///< of LoopStats::opsFromBuffer
        std::uint64_t bailouts = 0;  ///< declined activations
        TraceBailoutReason lastReason = TraceBailoutReason::None;
    };
    std::vector<PerLoop> perLoop;    ///< indexed by dense loop id
};

/**
 * Accumulate @p from into @p into — every counter added, the per-loop
 * table grown to the larger id space, lastReason taken from @p from
 * when it carries one. Lets a buffer-size sweep aggregate one
 * TraceCacheStats across runs (the bench JSON's trace_cache block)
 * while per-run code passes a freshly zeroed struct and gets a copy.
 */
void accumulateTraceCacheStats(TraceCacheStats &into,
                               const TraceCacheStats &from);

/** One flattened bundle of a built trace. */
struct TraceBundle
{
    std::uint32_t first = 0;    ///< into LoopTrace::ops
    std::uint32_t count = 0;
    std::int32_t sizeOps = 0;   ///< fetch size (for bulk accounting)
    /**
     * Slot-sensitive ops in the bundle (0 in REGISTER mode): the
     * per-bundle opsSensitive charge of the predicated replay path,
     * which cannot bulk-account per iteration because a side exit may
     * end the iteration mid-body.
     */
    std::int32_t sensOps = 0;
    /**
     * No op in the bundle reads register/predicate/slot state an
     * earlier op in the same bundle writes (and no load follows a
     * store), so writes can commit in place instead of through the
     * two-phase deferred-write buffers.
     */
    bool direct = false;
};

/** A per-loop flattened replay trace. */
struct LoopTrace
{
    enum class State : std::uint8_t
    {
        Unbuilt,
        Ready,
        /**
         * The loop buffer evicted the image this trace models. Trace
         * content is allocation-invariant (REC/EXEC ops — the only
         * bufAddr carriers — never survive the build gating), so
         * revalidation at the next residency is O(1); the state
         * exists so any future allocation-dependent trace content
         * has a correct hook, and so eviction-heavy workloads do not
         * pay a full rebuild per activation.
         */
        Stale,
        Untraceable,
    };
    State state = State::Unbuilt;
    /** Build verdict when Untraceable; None while traceable. */
    TraceBailoutReason reason = TraceBailoutReason::None;
    bool wloop = false;              ///< backedge is BR_WLOOP
    /**
     * The trace carries control ops — a guarded backedge and/or side
     * exits — and replays through the per-bundle predicated path
     * instead of the bulk-accounted fast path. Predicated traces keep
     * the backedge in the op stream (at beOpIndex) so its guard and
     * condition read live state in bundle order.
     */
    bool predicated = false;

    /** Body ops; backedge excluded unless predicated. */
    std::vector<MicroOp> ops;
    std::vector<TraceBundle> bundles;///< head bundles 0..backedge

    /** Predicated only: the backedge's position in ops. */
    std::uint32_t beOpIndex = 0;

    // While-loop backedge condition (read at the backedge bundle).
    // Fast-tier traces only; predicated traces evaluate the backedge
    // op in stream order.
    CmpCond beCond = CmpCond::EQ;
    XSrc beSrc0, beSrc1;

    std::uint32_t resumeBundle = 0;  ///< bundle index after backedge
    std::uint64_t bundlesPerIter = 0;
    std::uint64_t opsPerIter = 0;    ///< fetch-size sum per iteration
    std::uint64_t sensitivePerIter = 0; ///< SLOT-mode sensitive ops
};

struct LoopCtx;

/**
 * Static build-gating verdict for @p ctx's body in @p df: None means
 * the body is traceable, anything else names the first rule it fails.
 * With @p predReplay the predicated tier's wider rules apply: guarded
 * backedges and side-exit control ops (BR/JUMP leaving the loop) pass,
 * while nested loops, second backedges, and calls stay named; without
 * it the legacy strict verdicts (GuardedBackedge, MultiControlOp) are
 * produced, which is what the LBP_SIM_NO_PRED_REPLAY escape hatch
 * reverts to. Pure classification — no trace is built, no counters
 * move. Exposed so tests can probe the taxonomy against synthetic
 * decoded images without driving a full activation;
 * TraceCache::build() derives its Untraceable verdicts from exactly
 * this function.
 */
TraceBailoutReason classifyTraceBody(const LoopCtx &ctx,
                                     const DecodedFunction &df,
                                     bool predReplay);

/** Per-sim-instance trace store, keyed by interned dense loop id. */
class TraceCache
{
  public:
    TraceCache(std::size_t numLoops, bool slotMode, bool predReplay);

    /**
     * The trace for @p ctx's loop, building it on first use. The
     * caller checks the returned state: Ready replays, Untraceable
     * falls back (countBailout once per activation).
     */
    LoopTrace &acquire(const LoopCtx &ctx, const DecodedFunction &df);

    /**
     * Mark @p loopId's built trace Stale because the loop buffer
     * evicted its image. Untraceable verdicts are static and survive
     * (a rebuild would re-derive them).
     */
    void invalidate(int loopId);

    /**
     * Count one declined activation of @p loopId for @p reason —
     * total, per reason, and per loop (the loop also remembers the
     * reason for the scorecard). Call sites dedupe per activation via
     * LoopCtx::traceDeclined so bailouts ≤ activations holds.
     */
    void countBailout(int loopId, TraceBailoutReason reason);

    /** Counter reset at run() start; built traces stay valid. */
    void resetRunStats();

    const TraceCacheStats &stats() const { return stats_; }
    TraceCacheStats &stats() { return stats_; }

    bool slotMode() const { return slotMode_; }
    bool predReplay() const { return predReplay_; }

  private:
    void build(LoopTrace &tr, const LoopCtx &ctx,
               const DecodedFunction &df);

    std::vector<LoopTrace> traces_;
    TraceCacheStats stats_;
    bool slotMode_;
    bool predReplay_;
};

} // namespace lbp

#endif // LBP_SIM_TRACE_CACHE_HH
