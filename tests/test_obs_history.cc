/**
 * @file
 * Bench-history timeline and regression-gate tests: flattening
 * (escaped dotted keys, exact integer widths), the jsonl store
 * round-trip, key classification, the median+MAD window math and its
 * edge cases (empty history, single record), the null-poison policy
 * shared with diffRegistries, and the structural contract of the
 * self-contained HTML report.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/history.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/version.hh"

namespace lbp
{
namespace
{

using obs::CheckPolicy;
using obs::CheckReport;
using obs::HistoryRecord;
using obs::Json;
using obs::KeyClass;
using obs::Verdict;

/** The verdict recorded for @p key, or nullptr if it never appears. */
const obs::KeyVerdict *
findVerdict(const CheckReport &r, const std::string &key)
{
    for (const auto &kv : r.verdicts)
        if (kv.key == key)
            return &kv;
    return nullptr;
}

/** A minimal bench-shaped doc: {"bench": "t", <key>: <value>}. */
Json
benchDoc(const std::string &key, Json value)
{
    Json doc = Json::object();
    doc.set("bench", Json::str("t"));
    doc.set(key, std::move(value));
    return doc;
}

std::vector<HistoryRecord>
historyOf(std::initializer_list<const Json *> docs)
{
    std::vector<HistoryRecord> out;
    for (const Json *d : docs)
        out.push_back(obs::makeHistoryRecord(*d));
    return out;
}

// ------------------------------------------------------- flattening

TEST(ObsHistory, FlattenEscapesDottedSegments)
{
    // {"a.b": {"c": 1}} and {"a": {"b.c": 2}} must flatten to
    // DISTINCT keys, or registry metric names (which contain dots)
    // would collide with genuine nesting.
    Json d1 = Json::object();
    Json inner1 = Json::object();
    inner1.set("c", Json::integer(1));
    d1.set("a.b", std::move(inner1));

    Json d2 = Json::object();
    Json inner2 = Json::object();
    inner2.set("b.c", Json::integer(2));
    d2.set("a", std::move(inner2));

    const auto f1 = obs::flattenLeaves(d1);
    const auto f2 = obs::flattenLeaves(d2);
    ASSERT_EQ(f1.size(), 1u);
    ASSERT_EQ(f2.size(), 1u);
    EXPECT_EQ(f1[0].first, "a\\.b.c");
    EXPECT_EQ(f2[0].first, "a.b\\.c");
    EXPECT_NE(f1[0].first, f2[0].first);

    // Backslashes in raw names are escaped too.
    Json d3 = Json::object();
    d3.set("w\\x.y", Json::integer(3));
    const auto f3 = obs::flattenLeaves(d3);
    ASSERT_EQ(f3.size(), 1u);
    EXPECT_EQ(f3[0].first, "w\\\\x\\.y");
}

TEST(ObsHistory, FlattenDeepNestingAndArrays)
{
    Json doc = Json::object();
    Json lvl1 = Json::object();
    Json lvl2 = Json::object();
    Json arr = Json::array();
    arr.push(Json::integer(10));
    arr.push(Json::integer(20));
    lvl2.set("leaf.ms", std::move(arr));
    lvl1.set("mid", std::move(lvl2));
    doc.set("top", std::move(lvl1));

    const auto flat = obs::flattenLeaves(doc);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].first, "top.mid.leaf\\.ms.0");
    EXPECT_EQ(flat[1].first, "top.mid.leaf\\.ms.1");
    EXPECT_EQ(flat[1].second.asInt(), 20);
}

TEST(ObsHistory, FlattenSkipsIdentityRootsAndBins)
{
    Json doc = Json::object();
    doc.set("schema_version", Json::integer(2));
    doc.set("git_sha", Json::str("abc"));
    Json machine = Json::object();
    machine.set("threads", Json::integer(8));
    doc.set("machine", std::move(machine));
    Json meta = Json::object();
    meta.set("workload", Json::str("adpcm_dec"));
    doc.set("meta", std::move(meta));
    Json hist = Json::object();
    hist.set("p50", Json::integer(7));
    Json bins = Json::array();
    bins.push(Json::integer(1));
    hist.set("bins", std::move(bins));
    doc.set("h", std::move(hist));

    const auto flat = obs::flattenLeaves(doc);
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].first, "h.p50");
}

// -------------------------------------------------- store round-trip

TEST(ObsHistory, RecordRoundTripKeepsExactIntegerWidths)
{
    const std::uint64_t uMax =
        std::numeric_limits<std::uint64_t>::max();
    Json doc = Json::object();
    doc.set("bench", Json::str("widths"));
    doc.set("u", Json::uinteger(uMax));
    doc.set("i", Json::integer(std::int64_t{-123456789012345678}));

    const std::string path =
        testing::TempDir() + "/lbp_history_widths.jsonl";
    std::remove(path.c_str());

    const HistoryRecord rec = obs::makeHistoryRecord(doc);
    std::string error;
    ASSERT_TRUE(obs::appendHistory(path, rec, error)) << error;
    ASSERT_TRUE(obs::appendHistory(path, rec, error)) << error;

    const auto back = obs::loadHistory(path, error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].source, "widths");
    EXPECT_EQ(back[0].gitSha, obs::gitSha());

    // uint64 max and a large negative int64 survive the jsonl write
    // and re-parse exactly — not via a double.
    const Json *u = back[1].find("u");
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->asUint(), uMax);
    const Json *i = back[1].find("i");
    ASSERT_NE(i, nullptr);
    EXPECT_EQ(i->asInt(), std::int64_t{-123456789012345678});

    // The exact-class gate sees them as equal...
    CheckReport ok = obs::checkAgainstHistory(back, doc);
    EXPECT_FALSE(ok.failed());

    // ...and off-by-one at uint64 max still trips it.
    Json drift = Json::object();
    drift.set("bench", Json::str("widths"));
    drift.set("u", Json::uinteger(uMax - 1));
    drift.set("i", Json::integer(std::int64_t{-123456789012345678}));
    CheckReport bad = obs::checkAgainstHistory(back, drift);
    EXPECT_TRUE(bad.failed());
    const auto *kv = findVerdict(bad, "u");
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(kv->verdict, Verdict::ExactMismatch);

    std::remove(path.c_str());
}

TEST(ObsHistory, LoadMissingFileIsEmptyNotError)
{
    std::string error;
    const auto recs = obs::loadHistory(
        testing::TempDir() + "/lbp_no_such_history.jsonl", error);
    EXPECT_TRUE(recs.empty());
    EXPECT_TRUE(error.empty());
}

TEST(ObsHistory, LoadMalformedLineNamesLineNumber)
{
    const std::string path =
        testing::TempDir() + "/lbp_history_bad.jsonl";
    {
        std::ofstream os(path);
        os << "{\"history_schema\":1,\"source\":\"t\","
              "\"values\":{}}\n";
        os << "not json\n";
    }
    std::string error;
    obs::loadHistory(path, error);
    EXPECT_NE(error.find(":2:"), std::string::npos) << error;
    std::remove(path.c_str());
}

// ----------------------------------------------------- key classes

TEST(ObsHistory, ClassifyKeyPolicies)
{
    // Bench-style camelCase timings and the registry's ".ms" gauges
    // (one escaped segment after flattening) are both Timing.
    EXPECT_EQ(obs::classifyKey("timing.wallMs"), KeyClass::Timing);
    EXPECT_EQ(obs::classifyKey("timing.speedup"), KeyClass::Timing);
    EXPECT_EQ(obs::classifyKey(
                  "metrics.compile\\.phase\\.02_inline\\.ms"),
              KeyClass::Timing);
    EXPECT_EQ(obs::classifyKey("metrics.compile\\.total\\.ms"),
              KeyClass::Timing);

    // Counters, fractions, energies: exact.
    EXPECT_EQ(obs::classifyKey("metrics.sim\\.cycles"),
              KeyClass::Exact);
    EXPECT_EQ(obs::classifyKey("points.0.bufferFraction.3"),
              KeyClass::Exact);

    // Machine knobs and the bench name are identity, never compared.
    EXPECT_EQ(obs::classifyKey("timing.threads"), KeyClass::Identity);
    EXPECT_EQ(obs::classifyKey("bench"), KeyClass::Identity);

    // Array-indexed wall clocks are per-point: diagnostic in the doc
    // but never recorded or gated (a single scheduler preemption
    // spikes one sub-ms point far beyond any honest MAD window).
    // The numeric segment may sit anywhere on the path, and exact
    // keys under an index stay exact.
    EXPECT_EQ(obs::classifyKey("points.17.fastMs"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("points.0.referenceMs"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("points.3.speedup"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("sweep.4.inner.ms"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("points.17.cycles"),
              KeyClass::Exact);
    // An escaped dot does not fake an index boundary: "0.ms" as one
    // literal segment is a plain Timing gauge name.
    EXPECT_EQ(obs::classifyKey("metrics.0\\.ms.v.ms"),
              KeyClass::Timing);

    // Host PMU counters are host-variant by definition (different
    // machine, different cycles), so the whole pmu block is per-point:
    // recorded in the document, never gated. Both the bench-doc form
    // and the registry's escaped-segment form classify the same way.
    EXPECT_EQ(obs::classifyKey("pmu.regions.bench.cycles"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("pmu.available"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("metrics.pmu\\.total\\.ipc"),
              KeyClass::PerPoint);
    // The build-config bool is NOT a measurement: "build.pmu" must
    // stay exact so differently-configured builds fail the gate
    // loudly instead of averaging into one timeline.
    EXPECT_EQ(obs::classifyKey("build.pmu"), KeyClass::Exact);

    // Per-workload drill-down blocks are recorded but never gated;
    // the aggregate leaves next to them stay exact.
    EXPECT_EQ(obs::classifyKey("trace_cache.per_workload.g724_dec"
                               ".replay_coverage"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey(
                  "trace_cache.per_workload.adpcm_enc.replayed_ops"),
              KeyClass::PerPoint);
    EXPECT_EQ(obs::classifyKey("trace_cache.replay_coverage"),
              KeyClass::Exact);
}

TEST(ObsHistory, PerPointKeysNeverRecordedNorGated)
{
    // A bench doc with a spiky per-point timing: the record drops the
    // per-point leaves, and a 5x spike on one point passes the gate
    // while the aggregate stays windowed.
    auto doc = [](double pointMs, double totalMs) {
        obs::Json points = obs::Json::array();
        obs::Json p = obs::Json::object();
        p.set("fastMs", obs::Json::number(pointMs));
        p.set("cycles", obs::Json::uinteger(1234));
        points.push(std::move(p));
        obs::Json d = obs::Json::object();
        d.set("bench", obs::Json::str("pp"));
        d.set("totalMs", obs::Json::number(totalMs));
        d.set("points", std::move(points));
        return d;
    };

    const obs::HistoryRecord rec = obs::makeHistoryRecord(doc(1, 10));
    EXPECT_EQ(rec.find("points.0.fastMs"), nullptr)
        << "per-point timing must not be recorded";
    ASSERT_NE(rec.find("points.0.cycles"), nullptr)
        << "per-point counters stay recorded (exact-classed)";
    ASSERT_NE(rec.find("totalMs"), nullptr);

    const std::vector<obs::HistoryRecord> hist = {rec, rec, rec};
    const obs::CheckReport rep =
        obs::checkAgainstHistory(hist, doc(5, 10), obs::CheckPolicy{});
    EXPECT_FALSE(rep.failed()) << "5x one-point spike must not gate";
    for (const auto &v : rep.verdicts)
        EXPECT_NE(v.key, "points.0.fastMs")
            << "per-point timing must not even be judged";
}

// ------------------------------------------------------ window math

TEST(ObsHistory, EmptyHistoryPassesAsNoBaseline)
{
    const Json doc = benchDoc("x", Json::integer(42));
    const CheckReport r = obs::checkAgainstHistory({}, doc);
    EXPECT_FALSE(r.failed());
    EXPECT_EQ(r.baselineRecords, 0);
    const auto *kv = findVerdict(r, "x");
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(kv->verdict, Verdict::NoBaseline);
}

TEST(ObsHistory, SingleRecordWindowDegeneratesToRelAbs)
{
    // One record: MAD = 0, so the gate is rel/abs around the single
    // sample. rel=10% of 100ms = 10ms dominates abs.
    const Json base = benchDoc("wallMs", Json::number(100.0));
    const auto hist = historyOf({&base});

    const Json within = benchDoc("wallMs", Json::number(109.0));
    EXPECT_FALSE(obs::checkAgainstHistory(hist, within).failed());

    const Json slow = benchDoc("wallMs", Json::number(120.0));
    const CheckReport r = obs::checkAgainstHistory(hist, slow);
    EXPECT_TRUE(r.failed());
    const auto *kv = findVerdict(r, "wallMs");
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(kv->verdict, Verdict::Regressed);
    EXPECT_EQ(kv->samples, 1);
    EXPECT_DOUBLE_EQ(kv->baseline, 100.0);
    EXPECT_DOUBLE_EQ(kv->spread, 0.0);
    EXPECT_DOUBLE_EQ(kv->threshold, 10.0);

    // The same magnitude downward is an improvement, not a failure.
    const Json fast = benchDoc("wallMs", Json::number(80.0));
    const CheckReport r2 = obs::checkAgainstHistory(hist, fast);
    EXPECT_FALSE(r2.failed());
    EXPECT_EQ(findVerdict(r2, "wallMs")->verdict, Verdict::Improved);
}

TEST(ObsHistory, MadWindowAbsorbsObservedNoise)
{
    // Noisy history: 100 +/- ~6ms. The MAD term lifts the threshold
    // well past the rel band, so a 112ms sample inside the observed
    // noise passes while a genuine 2x regression still fails.
    std::vector<Json> docs;
    for (double v : {94.0, 106.0, 100.0, 97.0, 103.0})
        docs.push_back(benchDoc("wallMs", Json::number(v)));
    std::vector<HistoryRecord> hist;
    for (const auto &d : docs)
        hist.push_back(obs::makeHistoryRecord(d));

    const Json noisy = benchDoc("wallMs", Json::number(112.0));
    const CheckReport r = obs::checkAgainstHistory(hist, noisy);
    EXPECT_FALSE(r.failed()) << findVerdict(r, "wallMs")->detail;
    // median 100, deviations {6,6,0,3,3} -> MAD 3, threshold
    // max(0.05, 10, 4*1.4826*3 = 17.79) = 17.79.
    EXPECT_NEAR(findVerdict(r, "wallMs")->threshold, 17.7912, 1e-9);

    const Json doubled = benchDoc("wallMs", Json::number(200.0));
    EXPECT_TRUE(obs::checkAgainstHistory(hist, doubled).failed());
}

TEST(ObsHistory, WindowUsesOnlyNewestSamples)
{
    // 10 records: eight fast (2ms) then two slow (100ms). With
    // window=2 the baseline is the recent slow regime, so another
    // 100ms run passes; with window=10 the old fast majority drags
    // the median down and the same run fails.
    std::vector<HistoryRecord> hist;
    for (int i = 0; i < 8; ++i) {
        const Json d = benchDoc("wallMs", Json::number(2.0));
        hist.push_back(obs::makeHistoryRecord(d));
    }
    for (int i = 0; i < 2; ++i) {
        const Json d = benchDoc("wallMs", Json::number(100.0));
        hist.push_back(obs::makeHistoryRecord(d));
    }
    const Json cur = benchDoc("wallMs", Json::number(100.0));

    CheckPolicy narrow;
    narrow.window = 2;
    EXPECT_FALSE(obs::checkAgainstHistory(hist, cur, narrow).failed());

    CheckPolicy wide;
    wide.window = 10;
    EXPECT_TRUE(obs::checkAgainstHistory(hist, cur, wide).failed());
}

TEST(ObsHistory, SpeedupRegressesDownward)
{
    const Json base = benchDoc("speedup", Json::number(4.0));
    const auto hist = historyOf({&base});

    const Json worse = benchDoc("speedup", Json::number(3.0));
    const CheckReport r = obs::checkAgainstHistory(hist, worse);
    EXPECT_TRUE(r.failed());
    EXPECT_EQ(findVerdict(r, "speedup")->verdict, Verdict::Regressed);

    const Json better = benchDoc("speedup", Json::number(5.0));
    const CheckReport r2 = obs::checkAgainstHistory(hist, better);
    EXPECT_FALSE(r2.failed());
    EXPECT_EQ(findVerdict(r2, "speedup")->verdict, Verdict::Improved);
}

TEST(ObsHistory, MissingAndNewKeysAreDistinct)
{
    Json base = Json::object();
    base.set("bench", Json::str("t"));
    base.set("gone", Json::integer(1));
    const auto hist = historyOf({&base});

    Json cur = Json::object();
    cur.set("bench", Json::str("t"));
    cur.set("fresh", Json::integer(2));
    const CheckReport r = obs::checkAgainstHistory(hist, cur);
    EXPECT_TRUE(r.failed()); // the vanished key fails...
    EXPECT_EQ(findVerdict(r, "gone")->verdict, Verdict::MissingKey);
    // ...but the new key merely gets noted.
    EXPECT_EQ(findVerdict(r, "fresh")->verdict, Verdict::NewKey);
    EXPECT_FALSE(obs::verdictFails(Verdict::NewKey));
}

// ------------------------------------------------- null-poison policy

TEST(ObsHistory, NullGaugeIsPoisonInGateAndDiff)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // A NaN gauge serializes as null in the registry dump...
    obs::Registry ra;
    ra.gauge("power.totalNj").set(nan);
    const Json da = ra.toJson();
    std::ostringstream os;
    da.write(os);
    EXPECT_NE(os.str().find("null"), std::string::npos);

    // ...and diffRegistries flags it even against an identical dump:
    // null == null is still a mismatch, because NaN never equals
    // anything and silence would hide a poisoned metric.
    const auto selfDiff = obs::diffRegistries(da, da);
    ASSERT_EQ(selfDiff.size(), 1u);
    EXPECT_EQ(selfDiff[0].key, "power.totalNj");
    EXPECT_NE(selfDiff[0].a.find("null"), std::string::npos);

    // A finite-vs-null pair is also a diff, with distinct renderings
    // for "null" and "absent".
    obs::Registry rb;
    rb.gauge("power.totalNj").set(1.5);
    const auto diff = obs::diffRegistries(da, rb.toJson());
    ASSERT_EQ(diff.size(), 1u);
    EXPECT_NE(diff[0].a.find("non-finite"), std::string::npos);

    // The history gate: a null current value fails as NonFinite no
    // matter the baseline, even a null-for-null repeat.
    const Json fine = benchDoc("energyNj", Json::number(2.0));
    const Json poisoned = benchDoc("energyNj", Json::null());
    const auto hist = historyOf({&fine});
    const CheckReport r = obs::checkAgainstHistory(hist, poisoned);
    EXPECT_TRUE(r.failed());
    EXPECT_EQ(findVerdict(r, "energyNj")->verdict, Verdict::NonFinite);

    const auto histNull = historyOf({&poisoned});
    const CheckReport r2 =
        obs::checkAgainstHistory(histNull, poisoned);
    EXPECT_TRUE(r2.failed());
    EXPECT_EQ(findVerdict(r2, "energyNj")->verdict,
              Verdict::NonFinite);

    // Recovery: finite now, null in the store, passes.
    const CheckReport r3 = obs::checkAgainstHistory(histNull, fine);
    EXPECT_FALSE(r3.failed());

    // And a null is NOT conflated with a missing key.
    Json absent = Json::object();
    absent.set("bench", Json::str("t"));
    const CheckReport r4 = obs::checkAgainstHistory(histNull, absent);
    EXPECT_TRUE(r4.failed());
    EXPECT_EQ(findVerdict(r4, "energyNj")->verdict,
              Verdict::MissingKey);

    // An IN-MEMORY NaN (Kind::Number holding NaN, before any
    // serialize/parse lowers it to null) is equally poison, for both
    // key classes. NaN compares false against every threshold, so
    // without an explicit check a timing gauge would pass as Ok.
    Json inMem = Json::object();
    inMem.set("bench", Json::str("t"));
    inMem.set("wallMs", Json::number(nan));
    inMem.set("energyNj", Json::number(nan));
    Json finePrior = Json::object();
    finePrior.set("bench", Json::str("t"));
    finePrior.set("wallMs", Json::number(3.0));
    finePrior.set("energyNj", Json::number(2.0));
    const auto hist2 = historyOf({&finePrior});
    const CheckReport r5 = obs::checkAgainstHistory(hist2, inMem);
    EXPECT_TRUE(r5.failed());
    EXPECT_EQ(findVerdict(r5, "wallMs")->verdict, Verdict::NonFinite);
    EXPECT_EQ(findVerdict(r5, "energyNj")->verdict,
              Verdict::NonFinite);
}

// -------------------------------------------------- report contract

TEST(ObsHistory, CheckReportJsonShape)
{
    const Json base = benchDoc("wallMs", Json::number(100.0));
    const auto hist = historyOf({&base});
    const Json slow = benchDoc("wallMs", Json::number(200.0));
    const CheckReport r = obs::checkAgainstHistory(hist, slow);
    const Json j = r.toJson();
    EXPECT_TRUE(j.find("failed")->asBool());
    EXPECT_EQ(j.find("source")->asString(), "t");
    EXPECT_EQ(j.find("baseline_records")->asInt(), 1);
    ASSERT_EQ(j.find("verdicts")->items().size(), 1u);
    const Json &v = j.find("verdicts")->items()[0];
    EXPECT_EQ(v.find("key")->asString(), "wallMs");
    EXPECT_EQ(v.find("verdict")->asString(), "REGRESSED");
    // The machine-readable stamp rides along.
    ASSERT_NE(j.find("git_sha"), nullptr);
}

TEST(ObsReport, HtmlIsSelfContainedWithAllSections)
{
    obs::Registry reg;
    reg.info("workload", "unit");
    reg.counter("sim.cycles").set(123);
    reg.gauge("compile.phase.01_profile.ms").set(1.25);
    reg.gauge("compile.total.ms").set(2.5);
    reg.histogram("sim.loop.bodyOps").add(34, 2.0);

    obs::ReportData data;
    data.workload = "unit";
    data.registryDoc = reg.toJson();
    data.history.push_back(
        obs::makeHistoryRecord(data.registryDoc));
    data.historyPath = "unit.jsonl";
    data.check = obs::checkAgainstHistory(data.history,
                                          data.registryDoc)
                     .toJson();

    std::ostringstream os;
    obs::writeHtmlReport(os, data);
    const std::string html = os.str();

    for (const char *anchor :
         {"id=\"meta\"", "id=\"gate\"", "id=\"trajectories\"",
          "id=\"metrics\"", "id=\"histograms\"", "id=\"scorecard\"",
          "id=\"phases\"", "id=\"pmu\"", "class=\"spark\"", "<svg"})
        EXPECT_NE(html.find(anchor), std::string::npos) << anchor;

    // No pmu data in this document: the section renders an explicit
    // placeholder, never silently disappears.
    EXPECT_NE(html.find("no host counters in this document"),
              std::string::npos);

    // Self-contained: no external fetches of any kind.
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("<script src"), std::string::npos);

    // Metric values pass through htmlEscape on the way in.
    EXPECT_EQ(obs::htmlEscape("a<b&\"c\""), "a&lt;b&amp;&quot;c&quot;");
}

TEST(ObsReport, ProfAndPmuSectionsCarryDiagnostics)
{
    obs::Registry reg;
    obs::ReportData data;
    data.workload = "unit";
    data.registryDoc = reg.toJson();

    // Profiler snapshot with lost samples: the subtitle must surface
    // the drop count (the split under-counts whatever was dropped).
    Json prof = Json::object();
    prof.set("samples", Json::uinteger(90));
    prof.set("untracked", Json::uinteger(5));
    prof.set("dropped", Json::uinteger(10));
    prof.set("attributed_fraction", Json::number(0.85));
    Json profRegions = Json::object();
    profRegions.set("bench", Json::uinteger(85));
    prof.set("regions", std::move(profRegions));
    data.prof = std::move(prof);

    // An available pmu snapshot renders share bars with derived rates.
    Json row = Json::object();
    row.set("cycles", Json::uinteger(900));
    row.set("ipc", Json::number(2.5));
    row.set("branchMissPct", Json::number(1.25));
    Json pmuRegions = Json::object();
    pmuRegions.set("simDispatch", std::move(row));
    Json total = Json::object();
    total.set("cycles", Json::uinteger(1000));
    Json pmu = Json::object();
    pmu.set("available", Json::boolean(true));
    pmu.set("attributedCycleFraction", Json::number(0.9));
    pmu.set("regions", std::move(pmuRegions));
    pmu.set("total", std::move(total));
    data.pmu = std::move(pmu);

    std::ostringstream os;
    obs::writeHtmlReport(os, data);
    const std::string html = os.str();
    EXPECT_NE(html.find("samples dropped"), std::string::npos);
    EXPECT_NE(html.find("simDispatch"), std::string::npos);
    EXPECT_NE(html.find("ipc 2.5"), std::string::npos);
    EXPECT_NE(html.find("br-miss 1.25"), std::string::npos);

    // An unavailable snapshot renders its recorded reason verbatim.
    Json off = Json::object();
    off.set("available", Json::boolean(false));
    off.set("reason", Json::str("perf_event_open: unit test"));
    data.pmu = std::move(off);
    std::ostringstream os2;
    obs::writeHtmlReport(os2, data);
    EXPECT_NE(os2.str().find(
                  "host pmu unavailable: perf_event_open: unit test"),
              std::string::npos);
}

} // namespace
} // namespace lbp
