/**
 * @file
 * Backward live-variable analysis over general and predicate
 * registers, used by dead-code elimination and by the slot-predication
 * lowering (predicate live ranges).
 */

#ifndef LBP_ANALYSIS_LIVENESS_HH
#define LBP_ANALYSIS_LIVENESS_HH

#include <set>
#include <vector>

#include "ir/function.hh"

namespace lbp
{

/** Per-block live-in/live-out register sets. */
class Liveness
{
  public:
    explicit Liveness(const Function &fn);

    const std::set<RegId> &liveIn(BlockId b) const { return liveIn_[b]; }
    const std::set<RegId> &liveOut(BlockId b) const { return liveOut_[b]; }

    const std::set<PredId> &predLiveIn(BlockId b) const
    { return predLiveIn_[b]; }
    const std::set<PredId> &predLiveOut(BlockId b) const
    { return predLiveOut_[b]; }

    /**
     * Registers read by @p op (general registers only).
     */
    static std::vector<RegId> uses(const Operation &op);

    /** Registers written by @p op. */
    static std::vector<RegId> defs(const Operation &op);

    /** Predicates read (guard) by @p op. */
    static std::vector<PredId> predUses(const Operation &op);

    /** Predicates written by @p op. */
    static std::vector<PredId> predDefs(const Operation &op);

  private:
    std::vector<std::set<RegId>> liveIn_, liveOut_;
    std::vector<std::set<PredId>> predLiveIn_, predLiveOut_;
};

} // namespace lbp

#endif // LBP_ANALYSIS_LIVENESS_HH
