#!/usr/bin/env bash
# Full local check: configure Release (-O2), build, run the tier-1
# test suite (perf-labeled smoke excluded for speed), then the engine
# differential and the fast-path bench smoke (which re-verifies
# decoded-vs-reference equivalence on every sweep point it times).
# Continues with an ASan+UBSan build running the observability surface
# (obs-labeled tests + a traced workload through lbp_stats), since the
# trace ring and JSON parser are exactly the kind of index-arithmetic
# code sanitizers pay for — plus the engine differential under the
# LBP_SIM_NO_TRACE_CACHE and LBP_SIM_NO_PRED_REPLAY env overrides, so
# the predicated replay path, the fast-tier-only cache, and the
# general decoded path all run sanitized — then a TSan build of the same
# surface (thread pool + concurrent registry updates, and the
# self-profiler's signal-handler-vs-marker concurrency through
# tests/test_obs_prof.cc, which rides the obs label in both sanitizer
# builds; the live-sampling case is additionally run by name so a
# filter change cannot silently drop it, and so is the closed
# cycle-accounting invariant — every simulated cycle in exactly one
# CycleClass, both engines, trace cache on and off). Both sanitizer
# builds also run the host-PMU backend (ObsPmu tests + the lbp_stats
# pmu smoke), which must exit 0 whether or not this host exposes
# hardware counters. Finishes with the bench
# regression gate: re-runs the figure benches and diffs their JSON
# against the checked-in BENCH_*.json baselines — counters exact,
# timings and the machine block tolerated (lbp_stats diff policy).
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build-check}
SAN_BUILD="$BUILD-asan"
TSAN_BUILD="$BUILD-tsan"

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build "$BUILD" -j "$(nproc)"

# Tier-1: everything except the perf-labeled bench smoke.
ctest --test-dir "$BUILD" --output-on-failure -LE perf

# Engine differential: decoded fast path vs reference interpreter
# (internally runs the trace cache forced on and forced off), then
# once more with the cache disabled through the env override so the
# Auto-mode wiring is exercised too.
"$BUILD"/tests/lbp_sim_tests --gtest_filter='*EngineDifferential*' \
    --gtest_brief=1
LBP_SIM_NO_TRACE_CACHE=1 \
    "$BUILD"/tests/lbp_sim_tests \
    --gtest_filter='*EngineDifferential*' --gtest_brief=1

# Bench smoke (the ctest `perf` label), quick sweep + JSON emission,
# sampled by the self-profiler (--prof also proves the profiler rides
# along without perturbing the equivalence assertions).
"$BUILD"/bench/bench_sim_fastpath --quick --prof \
    --json="$BUILD"/BENCH_sim_fastpath_smoke.json

# Self-profiler smoke: region table, attribution line, collapsed
# stacks. Exit 1 with a clear message is acceptable only on kernels
# without per-thread CPU timers; the cli prof_smoke ctest case has
# already enforced that contract above.
"$BUILD"/tools/lbp_stats prof adpcm_dec \
    --out="$BUILD"/adpcm_dec.folded >/dev/null
test -s "$BUILD"/adpcm_dec.folded

# Host-counter smoke: `pmu` must exit 0 on EVERY host — with a usable
# PMU it prints the per-region counter table, without one (VMs,
# containers, perf_event_paranoid) it names the reason and publishes
# pmu.available=0. The cli pmu_smoke ctest case above has already
# checked the dump's shape for whichever arm this host takes.
"$BUILD"/tools/lbp_stats pmu adpcm_dec --reps=2 >/dev/null
"$BUILD"/bench/bench_fig8b_power --pmu >/dev/null

# Sanitizer pass: ASan + UBSan over the observability surface. Debug
# (-O1) keeps stacks honest while staying fast enough for the smoke.
cmake -B "$SAN_BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-O1 -g -fsanitize=address,undefined \
-fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$SAN_BUILD" -j "$(nproc)" \
    --target lbp_obs_tests lbp_sim_tests lbp_stats
ctest --test-dir "$SAN_BUILD" --output-on-failure -L obs
# Sanitized engine differential with the trace cache disabled by env:
# Auto resolves to off (general path sanitized), while the test's own
# force-on leg keeps the replay path sanitized in the same run.
LBP_SIM_NO_TRACE_CACHE=1 \
    "$SAN_BUILD"/tests/lbp_sim_tests \
    --gtest_filter='*EngineDifferential*' --gtest_brief=1
# Same differential with predicated replay disabled by env: Auto
# resolves to fast-tier-only, sanitizing the strict classifier and
# the escape hatch itself (the test's force-on leg keeps the
# predicated replay path covered in the same run).
LBP_SIM_NO_PRED_REPLAY=1 \
    "$SAN_BUILD"/tests/lbp_sim_tests \
    --gtest_filter='*EngineDifferential*' --gtest_brief=1
# Profiler under ASan, by name: live sampling with concurrent region
# markers (the SIGPROF handler's single-writer discipline).
"$SAN_BUILD"/tests/lbp_obs_tests \
    --gtest_filter='ObsProf.ConcurrentThreadsSampleIndependently:ObsProf.SamplesAttributeToInnermostRegion' \
    --gtest_brief=1
# Cycle-accounting invariant under ASan, by name: every simulated
# cycle in exactly one class, per-loop rows integrating to the
# workload stack, on every workload in both engines with the trace
# cache forced on and off.
"$SAN_BUILD"/tests/lbp_obs_tests \
    --gtest_filter='LoopScorecard.AttributionInvariantBothEnginesAllWorkloads:CycleStack.*' \
    --gtest_brief=1
"$SAN_BUILD"/tools/lbp_stats trace adpcm_dec \
    --out="$SAN_BUILD"/adpcm_dec.trace.json
"$SAN_BUILD"/tools/lbp_stats run adpcm_dec \
    --json="$SAN_BUILD"/adpcm_dec.stats.json >/dev/null
"$SAN_BUILD"/tools/lbp_stats diff \
    "$SAN_BUILD"/adpcm_dec.stats.json \
    "$SAN_BUILD"/adpcm_dec.stats.json
# The cycle-delta decomposer's recursive document walk, sanitized
# (self-explain: identical stacks, exit 0).
"$SAN_BUILD"/tools/lbp_stats explain \
    "$SAN_BUILD"/adpcm_dec.stats.json \
    "$SAN_BUILD"/adpcm_dec.stats.json >/dev/null
# Host-counter backend under ASan, by name: counter fd lifecycle,
# region-hook install/uninstall, and the graceful-unavailability arm
# (or live counting, host permitting).
"$SAN_BUILD"/tests/lbp_obs_tests --gtest_filter='ObsPmu.*' \
    --gtest_brief=1
"$SAN_BUILD"/tools/lbp_stats pmu adpcm_dec --reps=2 >/dev/null

# TSan pass: the thread pool plus concurrent obs-registry updates
# (tests/test_obs_concurrency.cc) are the only intentionally
# multi-threaded surface; prove the create-then-mutate-disjoint
# pattern and the pool's submit/wait handoff race-free.
cmake -B "$TSAN_BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-O1 -g -fsanitize=thread"
cmake --build "$TSAN_BUILD" -j "$(nproc)" \
    --target lbp_obs_tests lbp_sim_tests lbp_stats
ctest --test-dir "$TSAN_BUILD" --output-on-failure -L obs
# Engine differential under TSan with predicated replay disabled by
# env (same leg as the ASan pass): the sim is single-threaded, but
# the differential drives the decoded engine through the threaded
# dispatch tables, and the env override must behave identically in
# every instrumented build.
LBP_SIM_NO_PRED_REPLAY=1 \
    "$TSAN_BUILD"/tests/lbp_sim_tests \
    --gtest_filter='*EngineDifferential*' --gtest_brief=1
# Profiler under TSan, by name (same cases as the ASan leg).
"$TSAN_BUILD"/tests/lbp_obs_tests \
    --gtest_filter='ObsProf.ConcurrentThreadsSampleIndependently:ObsProf.SamplesAttributeToInnermostRegion' \
    --gtest_brief=1
# Cycle-accounting invariant under TSan, by name (same case as the
# ASan leg).
"$TSAN_BUILD"/tests/lbp_obs_tests \
    --gtest_filter='LoopScorecard.AttributionInvariantBothEnginesAllWorkloads:CycleStack.*' \
    --gtest_brief=1
# Host-counter backend under TSan, by name: the region hook fires on
# every marker transition while snapshot() reads the per-region
# atomics cross-thread.
"$TSAN_BUILD"/tests/lbp_obs_tests --gtest_filter='ObsPmu.*' \
    --gtest_brief=1
"$TSAN_BUILD"/tools/lbp_stats pmu adpcm_dec --reps=2 >/dev/null

# Bench regression gate: figure results must match the checked-in
# baselines counter-exact (fractions, energies, cycles); wall-clock
# keys and the machine block are ignored by the diff policy. Each
# bench also appends its document to the build-local history store
# (the same --history hook CI uses), feeding the statistical gate
# below.
HISTORY="$BUILD"/BENCH_history.jsonl
rm -f "$HISTORY"
"$BUILD"/bench/bench_fig7_buffer_issue \
    --json="$BUILD"/BENCH_fig7.json --history="$HISTORY" >/dev/null
"$BUILD"/tools/lbp_stats diff BENCH_fig7.json "$BUILD"/BENCH_fig7.json
"$BUILD"/bench/bench_fig8b_power \
    --json="$BUILD"/BENCH_fig8b.json --history="$HISTORY" >/dev/null
"$BUILD"/tools/lbp_stats diff BENCH_fig8b.json \
    "$BUILD"/BENCH_fig8b.json
"$BUILD"/bench/bench_sim_fastpath \
    --json="$BUILD"/BENCH_sim_fastpath.json --history="$HISTORY" \
    >/dev/null
"$BUILD"/tools/lbp_stats diff BENCH_sim_fastpath.json \
    "$BUILD"/BENCH_sim_fastpath.json

# History gate + flight recorder: seed the store with the checked-in
# baselines too (so every timing key has >1 sample), judge each fresh
# bench document against the timeline — counters exact, timings inside
# the median+MAD window — then render the self-contained HTML report.
for doc in BENCH_fig7.json BENCH_fig8b.json BENCH_sim_fastpath.json; do
    "$BUILD"/tools/lbp_stats history append "$doc" \
        --history="$HISTORY" >/dev/null
done
for doc in BENCH_fig7.json BENCH_fig8b.json BENCH_sim_fastpath.json; do
    "$BUILD"/tools/lbp_stats history check "$BUILD/$doc" \
        --history="$HISTORY"
done
"$BUILD"/tools/lbp_stats report adpcm_dec --history="$HISTORY" \
    --out="$BUILD"/flight_recorder.html
test -s "$BUILD"/flight_recorder.html

echo "check.sh: all checks passed"
