/**
 * @file
 * Per-op dispatch strategy shared by the decoded executor body and the
 * trace-cache replay loop.
 *
 * LBP_THREADED_DISPATCH (CMake toggle, default ON) selects
 * computed-goto ("threaded") dispatch on compilers with the GCC/Clang
 * labels-as-values extension: a function-static label table indexed by
 * the handler byte predecode assigns to every MicroOp, so each op
 * costs one indirect jump instead of a switch's bounds check plus
 * jump-table indirection, and the branch predictor gets one indirect
 * target per dispatch site. Any other compiler — or an OFF build — gets
 * a dense switch over the same byte. The macros keep the handler
 * bodies themselves textually identical between the two strategies,
 * and the engine-differential test pins both against the reference
 * interpreter.
 *
 * Usage (order of LBP_DISPATCH_LABELS must match ExecHandler):
 *
 *   LBP_DISPATCH_TABLE();            // once per function, any scope
 *   for (...) {
 *       LBP_DISPATCH(m->handler) {
 *           LBP_HANDLER(PRED_DEF) { ...; LBP_NEXT_OP; }
 *           ...
 *           LBP_BAD_HANDLER();
 *       }
 *       LBP_DISPATCH_END;
 *   }
 */

#ifndef LBP_SIM_DISPATCH_HH
#define LBP_SIM_DISPATCH_HH

#include "sim/decoded.hh"
#include "support/logging.hh"

#ifndef LBP_THREADED_DISPATCH
#define LBP_THREADED_DISPATCH 1
#endif

#if LBP_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define LBP_DISPATCH_COMPUTED_GOTO 1
#else
#define LBP_DISPATCH_COMPUTED_GOTO 0
#endif

#if LBP_DISPATCH_COMPUTED_GOTO

#define LBP_DISPATCH_TABLE()                                                \
    static const void *const lbpHandlerTable                                \
        [static_cast<int>(::lbp::ExecHandler::COUNT)] = {                   \
            &&lbp_h_PRED_DEF, &&lbp_h_LOAD,     &&lbp_h_STORE,              \
            &&lbp_h_MOV,      &&lbp_h_ABS,      &&lbp_h_ITOF,               \
            &&lbp_h_FTOI,     &&lbp_h_SELECT,   &&lbp_h_BR,                 \
            &&lbp_h_JUMP,     &&lbp_h_BR_CLOOP, &&lbp_h_LOOP,               \
            &&lbp_h_CALL,     &&lbp_h_RET,      &&lbp_h_ALU}

#define LBP_DISPATCH(h) goto *lbpHandlerTable[static_cast<int>(h)];
#define LBP_HANDLER(name) lbp_h_##name:
/** The handler byte is total over ExecHandler; no bad-value path. */
#define LBP_BAD_HANDLER()
#define LBP_NEXT_OP goto lbp_h_next
#define LBP_DISPATCH_END                                                    \
    lbp_h_next:;

#else // portable switch fallback

#define LBP_DISPATCH_TABLE()                                                \
    do {                                                                    \
    } while (0)

#define LBP_DISPATCH(h) switch (h)
#define LBP_HANDLER(name) case ::lbp::ExecHandler::name:
#define LBP_BAD_HANDLER()                                                   \
    default:                                                                \
        LBP_PANIC("bad handler byte in decoded dispatch")
#define LBP_NEXT_OP break
#define LBP_DISPATCH_END

#endif // LBP_DISPATCH_COMPUTED_GOTO

#endif // LBP_SIM_DISPATCH_HH
