/**
 * @file
 * IRBuilder: fluent construction of lbp IR. All workloads and most tests
 * build programs through this interface.
 *
 * The builder maintains a current insertion block; operations are
 * appended there. A current guard predicate, when set, is attached to
 * every emitted operation (used when hand-building predicated code).
 */

#ifndef LBP_IR_BUILDER_HH
#define LBP_IR_BUILDER_HH

#include <functional>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace lbp
{

class IRBuilder
{
  public:
    IRBuilder(Program &prog, FuncId func);

    Program &program() { return prog_; }
    Function &function() { return fn_; }

    /** Create a block (does not move the insertion point). */
    BlockId makeBlock(const std::string &name = "");

    /** Move the insertion point to @p b. */
    void at(BlockId b);

    BlockId current() const { return cur_; }

    /** Set the current block's fall-through successor. */
    void fallTo(BlockId b);

    /** Set/clear the guard applied to subsequently emitted ops. */
    void setGuard(PredId p) { guard_ = p; }
    void clearGuard() { guard_ = kNoPred; }

    /** Append an arbitrary operation (assigns id and guard). */
    Operation &emit(Operation op);

    // ---- Value producers (fresh destination register) ----
    RegId iconst(std::int64_t v);
    RegId add(Operand a, Operand b);
    RegId sub(Operand a, Operand b);
    RegId mul(Operand a, Operand b);
    RegId div(Operand a, Operand b);
    RegId rem(Operand a, Operand b);
    RegId and_(Operand a, Operand b);
    RegId or_(Operand a, Operand b);
    RegId xor_(Operand a, Operand b);
    RegId shl(Operand a, Operand b);
    RegId shr(Operand a, Operand b);
    RegId shra(Operand a, Operand b);
    RegId min(Operand a, Operand b);
    RegId max(Operand a, Operand b);
    RegId satadd(Operand a, Operand b);
    RegId satsub(Operand a, Operand b);
    RegId abs(Operand a);
    RegId mov(Operand a);
    RegId cmp(CmpCond c, Operand a, Operand b);
    RegId select(Operand c, Operand t, Operand f);
    RegId loadB(Operand base, Operand off);
    RegId loadH(Operand base, Operand off);
    RegId loadW(Operand base, Operand off);

    // ---- In-place updates of an existing register ----
    void addTo(RegId dst, Operand a, Operand b);
    void subTo(RegId dst, Operand a, Operand b);
    void mulTo(RegId dst, Operand a, Operand b);
    void movTo(RegId dst, Operand a);
    void binTo(Opcode op, RegId dst, Operand a, Operand b);

    // ---- Memory ----
    void storeB(Operand base, Operand off, Operand v);
    void storeH(Operand base, Operand off, Operand v);
    void storeW(Operand base, Operand off, Operand v);

    // ---- Predicates ----
    PredId newPred() { return fn_.newPred(); }
    void predDef(PredDefKind k0, PredId p0, CmpCond c, Operand a,
                 Operand b);
    void predDef2(PredDefKind k0, PredId p0, PredDefKind k1, PredId p1,
                  CmpCond c, Operand a, Operand b);

    // ---- Control flow ----
    void br(CmpCond c, Operand a, Operand b, BlockId target);
    void jump(BlockId target);
    void ret(const std::vector<Operand> &values = {});
    void wloopBack(CmpCond c, Operand a, Operand b, BlockId head);
    std::vector<RegId> call(FuncId callee,
                            const std::vector<Operand> &args,
                            int num_rets);

    /**
     * Build a counted loop: for (i = start; i < bound; i += step).
     *
     * Creates header/latch structure:
     *   pre: i = start; (falls into body)
     *   body: <bodyFn(i)>; i += step; br lt i, bound -> body
     *   after: insertion point left in a fresh block after the loop.
     *
     * The loop body is a single block unless bodyFn creates more; the
     * backedge is appended to the insertion block current when bodyFn
     * returns.
     *
     * @return the loop header block id.
     */
    BlockId forLoop(std::int64_t start, std::int64_t bound,
                    std::int64_t step,
                    const std::function<void(RegId)> &bodyFn);

    /** Variant with register bound. */
    BlockId forLoopReg(std::int64_t start, RegId bound, std::int64_t step,
                       const std::function<void(RegId)> &bodyFn);

  private:
    BlockId forLoopImpl(std::int64_t start, Operand bound,
                        std::int64_t step,
                        const std::function<void(RegId)> &bodyFn);

    Program &prog_;
    Function &fn_;
    BlockId cur_;
    PredId guard_ = kNoPred;
};

} // namespace lbp

#endif // LBP_IR_BUILDER_HH
