#include "analysis/dominators.hh"

#include "support/logging.hh"

namespace lbp
{

Dominators::Dominators(const Function &fn) : fn_(fn)
{
    const size_t n = fn.blocks.size();
    idom_.assign(n, kNoBlock);
    rpoIndex_.assign(n, -1);
    rpo_ = fn.reversePostorder();
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = static_cast<int>(i);

    auto preds = fn.predecessors();

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[fn.entry] = fn.entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo_) {
            if (b == fn.entry)
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId p : preds[b]) {
                if (rpoIndex_[p] < 0 || idom_[p] == kNoBlock)
                    continue;
                new_idom = new_idom == kNoBlock ? p
                                                : intersect(p, new_idom);
            }
            if (new_idom != kNoBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
    // Entry's idom is conventionally "none".
    idom_[fn.entry] = kNoBlock;
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    LBP_ASSERT(a < idom_.size() && b < idom_.size(), "bad block id");
    if (!reachable(b))
        return false;
    while (b != kNoBlock) {
        if (a == b)
            return true;
        b = idom_[b];
    }
    return false;
}

} // namespace lbp
