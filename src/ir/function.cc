#include "ir/function.hh"

#include <algorithm>

#include "support/logging.hh"

namespace lbp
{

BlockId
Function::newBlock(const std::string &bname)
{
    BasicBlock bb;
    bb.id = static_cast<BlockId>(blocks.size());
    bb.name = bname.empty() ? ("bb" + std::to_string(bb.id)) : bname;
    blocks.push_back(std::move(bb));
    return blocks.back().id;
}

std::vector<BlockId>
Function::liveBlocks() const
{
    std::vector<BlockId> out;
    for (const auto &b : blocks)
        if (!b.dead)
            out.push_back(b.id);
    return out;
}

std::vector<std::vector<BlockId>>
Function::predecessors() const
{
    std::vector<std::vector<BlockId>> preds(blocks.size());
    for (const auto &b : blocks) {
        if (b.dead)
            continue;
        for (BlockId s : b.successors()) {
            LBP_ASSERT(s < blocks.size(), "bad successor in ", name);
            preds[s].push_back(b.id);
        }
    }
    return preds;
}

std::vector<BlockId>
Function::reversePostorder() const
{
    std::vector<BlockId> order;
    if (entry == kNoBlock)
        return order;
    std::vector<char> state(blocks.size(), 0); // 0 new, 1 open, 2 done
    // Iterative DFS computing postorder.
    std::vector<std::pair<BlockId, size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    std::vector<BlockId> post;
    while (!stack.empty()) {
        auto &[b, idx] = stack.back();
        auto succs = blocks[b].successors();
        if (idx < succs.size()) {
            BlockId s = succs[idx++];
            if (!blocks[s].dead && state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(b);
            state[b] = 2;
            stack.pop_back();
        }
    }
    order.assign(post.rbegin(), post.rend());
    return order;
}

int
Function::sizeOps() const
{
    int n = 0;
    for (const auto &b : blocks)
        if (!b.dead)
            n += b.sizeOps();
    return n;
}

int
Function::assignOpIds()
{
    int touched = 0;
    for (auto &b : blocks) {
        if (b.dead)
            continue;
        for (auto &o : b.ops) {
            if (o.id == 0) {
                o.id = newOpId();
                ++touched;
            }
        }
    }
    return touched;
}

int
Function::pruneUnreachable()
{
    std::vector<char> reach(blocks.size(), 0);
    for (BlockId b : reversePostorder())
        reach[b] = 1;
    int removed = 0;
    for (auto &b : blocks) {
        if (!b.dead && !reach[b.id]) {
            b.dead = true;
            b.ops.clear();
            b.fallthrough = kNoBlock;
            ++removed;
        }
    }
    return removed;
}

} // namespace lbp
