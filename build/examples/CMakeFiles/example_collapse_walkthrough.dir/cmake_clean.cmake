file(REMOVE_RECURSE
  "CMakeFiles/example_collapse_walkthrough.dir/collapse_walkthrough.cpp.o"
  "CMakeFiles/example_collapse_walkthrough.dir/collapse_walkthrough.cpp.o.d"
  "example_collapse_walkthrough"
  "example_collapse_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_collapse_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
