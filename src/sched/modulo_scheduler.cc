#include "sched/modulo_scheduler.hh"

#include <algorithm>

#include "analysis/dependence.hh"
#include "support/logging.hh"

namespace lbp
{

int
computeResMII(const BasicBlock &bb, const Machine &machine)
{
    int total = 0;
    std::array<int, static_cast<size_t>(UnitClass::NUM_CLASSES)>
        perClass{};
    for (const auto &op : bb.ops) {
        if (op.op == Opcode::NOP)
            continue;
        ++total;
        ++perClass[static_cast<size_t>(unitClassOf(op.op))];
    }
    auto ceilDiv = [](int a, int b) { return (a + b - 1) / b; };
    int mii = std::max(1, ceilDiv(total, Machine::width));
    for (int u = 0; u < static_cast<int>(UnitClass::NUM_CLASSES); ++u) {
        const UnitClass uc = static_cast<UnitClass>(u);
        if (uc == UnitClass::IALU)
            continue; // IALU ops can use every slot (covered by total)
        const int cnt = perClass[u];
        if (cnt > 0)
            mii = std::max(mii, ceilDiv(cnt, machine.unitCount(uc)));
    }
    return mii;
}

namespace
{

/** Modulo reservation table: one op index (or -1) per row x slot. */
class MRT
{
  public:
    MRT(int ii) : ii_(ii), table_(ii * Machine::width, -1) {}

    int &at(int cycle, int slot)
    { return table_[mod(cycle) * Machine::width + slot]; }

    int mod(int cycle) const
    { return ((cycle % ii_) + ii_) % ii_; }

  private:
    int ii_;
    std::vector<int> table_;
};

struct ImsState
{
    std::vector<int> cycleOf;  // -1 = unscheduled
    std::vector<int> slotOf;
};

/**
 * Attempt one II. Returns true and fills @p state on success.
 */
bool
tryScheduleII(const BasicBlock &bb, const DepGraph &dg,
              const Machine &machine, int ii, int budget,
              ImsState &state)
{
    const int n = dg.numOps();
    state.cycleOf.assign(n, -1);
    state.slotOf.assign(n, kNoSlot);
    MRT mrt(ii);

    const std::vector<int> heights = dg.heights();

    // Worklist ordered by height (descending), then program order.
    std::vector<int> order;
    for (int i = 0; i < n; ++i)
        if (bb.ops[i].op != Opcode::NOP)
            order.push_back(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (heights[a] != heights[b])
            return heights[a] > heights[b];
        return a < b;
    });

    std::vector<int> lastTried(n, -1);
    std::vector<int> work = order;
    std::array<PredId, Machine::width> slotOwner{};
    slotOwner.fill(kNoPred);

    while (!work.empty()) {
        if (budget-- <= 0)
            return false;
        // Highest-priority unscheduled op.
        std::sort(work.begin(), work.end(), [&](int a, int b) {
            if (heights[a] != heights[b])
                return heights[a] > heights[b];
            return a < b;
        });
        const int op = work.front();
        work.erase(work.begin());

        // Earliest start from scheduled predecessors.
        int estart = 0;
        for (int eidx : dg.preds(op)) {
            const DepEdge &e = dg.edge(eidx);
            if (state.cycleOf[e.from] < 0)
                continue;
            estart = std::max(estart, state.cycleOf[e.from] +
                                          e.latency - ii * e.distance);
        }
        // Iterative restart rule: never retry the same cycle.
        int tmin = estart;
        if (lastTried[op] >= 0)
            tmin = std::max(tmin, lastTried[op] + 1);

        // Find a (cycle, slot) within [tmin, tmin + ii - 1].
        // Predicated consumers prefer slots owned by their guard
        // predicate and avoid foreign-owned slots (scheduler-side
        // cooperation with slot-based predication, paper section
        // 4.3).
        const UnitClass uc = unitClassOf(bb.ops[op].op);
        const PredId guard = bb.ops[op].guard;
        const auto &slots = machine.slotsFor(uc);
        int chosenT = -1, chosenSlot = kNoSlot;
        if (guard != kNoPred) {
            for (int pass = 0; pass < 2 && chosenT < 0; ++pass) {
                for (int t = tmin; t < tmin + ii && chosenT < 0;
                     ++t) {
                    for (auto it = slots.rbegin(); it != slots.rend();
                         ++it) {
                        const bool ownerOk =
                            pass == 0
                                ? slotOwner[*it] == guard
                                : slotOwner[*it] == kNoPred;
                        if (ownerOk && mrt.at(t, *it) < 0) {
                            chosenT = t;
                            chosenSlot = *it;
                            break;
                        }
                    }
                }
            }
        }
        for (int t = tmin; t < tmin + ii && chosenT < 0; ++t) {
            for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
                if (mrt.at(t, *it) < 0) {
                    chosenT = t;
                    chosenSlot = *it;
                    break;
                }
            }
        }
        if (chosenT < 0) {
            // Force placement at tmin, ejecting the victim in the
            // least-height-critical capable slot.
            chosenT = tmin;
            int victimSlot = kNoSlot, victimH = INT32_MAX;
            for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
                const int occ = mrt.at(chosenT, *it);
                LBP_ASSERT(occ >= 0, "free slot missed");
                if (heights[occ] < victimH) {
                    victimH = heights[occ];
                    victimSlot = *it;
                }
            }
            chosenSlot = victimSlot;
            const int victim = mrt.at(chosenT, chosenSlot);
            mrt.at(chosenT, chosenSlot) = -1;
            state.cycleOf[victim] = -1;
            state.slotOf[victim] = kNoSlot;
            work.push_back(victim);
        }

        mrt.at(chosenT, chosenSlot) = op;
        state.cycleOf[op] = chosenT;
        state.slotOf[op] = chosenSlot;
        lastTried[op] = chosenT;
        if (guard != kNoPred && slotOwner[chosenSlot] == kNoPred)
            slotOwner[chosenSlot] = guard;

        // Eject scheduled ops whose dependence on/from op is now
        // violated.
        auto violated = [&](const DepEdge &e) {
            if (state.cycleOf[e.from] < 0 || state.cycleOf[e.to] < 0)
                return false;
            return state.cycleOf[e.to] + ii * e.distance -
                       state.cycleOf[e.from] < e.latency;
        };
        for (int eidx : dg.succs(op)) {
            const DepEdge &e = dg.edge(eidx);
            if (e.to != op && violated(e)) {
                const int q = e.to;
                mrt.at(state.cycleOf[q], state.slotOf[q]) = -1;
                state.cycleOf[q] = -1;
                state.slotOf[q] = kNoSlot;
                work.push_back(q);
            }
        }
        for (int eidx : dg.preds(op)) {
            const DepEdge &e = dg.edge(eidx);
            if (e.from != op && violated(e)) {
                const int q = e.from;
                mrt.at(state.cycleOf[q], state.slotOf[q]) = -1;
                state.cycleOf[q] = -1;
                state.slotOf[q] = kNoSlot;
                work.push_back(q);
            }
        }
        // Deduplicate the worklist.
        std::sort(work.begin(), work.end());
        work.erase(std::unique(work.begin(), work.end()), work.end());
    }
    return true;
}

/** Modulo-variable-expansion factor from value lifetimes. */
int
computeMve(const BasicBlock &bb, const DepGraph &dg,
           const ImsState &state, int ii)
{
    (void)bb;
    int mve = 1;
    for (const auto &e : dg.edges()) {
        if (e.kind != DepKind::TRUE_)
            continue;
        if (state.cycleOf[e.from] < 0 || state.cycleOf[e.to] < 0)
            continue;
        // Lifetime of the value produced by e.from, as consumed by
        // e.to (possibly in a later iteration).
        const int life = state.cycleOf[e.to] + ii * e.distance -
                         state.cycleOf[e.from];
        if (life > 0)
            mve = std::max(mve, (life + ii - 1) / ii);
    }
    return mve;
}

} // namespace

SchedBlock
moduloScheduleLoop(const BasicBlock &bb, const Machine &machine,
                   const ModuloOptions &opts, ModuloResult *outInfo)
{
    SchedBlock sb;
    sb.irBlock = bb.id;
    sb.valid = true;
    sb.isLoopBody = true;

    DepGraph dg(bb, /*loopCarried=*/true);
    const int resMII = computeResMII(bb, machine);
    const int recMII = dg.recMII();
    if (outInfo) {
        outInfo->resMII = resMII;
        outInfo->recMII = recMII;
    }

    ImsState state;
    int ii = std::max(resMII, recMII);
    bool ok = false;
    int realOps = 0;
    for (const auto &op : bb.ops)
        if (op.op != Opcode::NOP)
            ++realOps;
    if (realOps == 0)
        return sb;

    for (; ii <= opts.maxII; ++ii) {
        if (tryScheduleII(bb, dg, machine, ii,
                          opts.budgetRatio * realOps, state)) {
            ok = true;
            break;
        }
    }
    if (!ok) {
        sb.valid = false;
        if (outInfo)
            outInfo->success = false;
        return sb;
    }

    // Normalize to cycle 0 and emit bundles.
    int minC = INT32_MAX, maxC = INT32_MIN;
    for (size_t i = 0; i < bb.ops.size(); ++i) {
        if (bb.ops[i].op == Opcode::NOP)
            continue;
        minC = std::min(minC, state.cycleOf[i]);
        maxC = std::max(maxC, state.cycleOf[i]);
    }
    const int len = maxC - minC + 1;
    sb.bundles.assign(len, Bundle{});
    for (size_t i = 0; i < bb.ops.size(); ++i) {
        if (bb.ops[i].op == Opcode::NOP)
            continue;
        Bundle &bu = sb.bundles[state.cycleOf[i] - minC];
        bu.ops.push_back({bb.ops[i], state.slotOf[i]});
    }
    for (auto &bu : sb.bundles) {
        std::sort(bu.ops.begin(), bu.ops.end(),
                  [](const SchedOp &a, const SchedOp &b) {
                      return a.op.id < b.op.id;
                  });
    }

    sb.ii = ii;
    sb.minII = std::max(resMII, recMII);
    sb.pipelined = true;
    // Rotating register files rename kernel values per iteration in
    // hardware, making modulo variable expansion (and its buffer
    // image growth) unnecessary.
    sb.mveFactor = opts.rotatingRegisters
                       ? 1
                       : computeMve(bb, dg, state, ii);
    if (outInfo)
        outInfo->success = true;
    return sb;
}

} // namespace lbp
