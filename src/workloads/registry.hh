/**
 * @file
 * Name-indexed registry over the Table-1 benchmark set.
 */

#ifndef LBP_WORKLOADS_REGISTRY_HH
#define LBP_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace lbp
{
namespace workloads
{

struct WorkloadInfo
{
    std::string name;
    std::string description;
};

/** All benchmark names, in the paper's Table-1 order. */
std::vector<WorkloadInfo> allWorkloads();

/** Build a fresh Program for @p name; fatal on unknown names. */
Program buildWorkload(const std::string &name);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_REGISTRY_HH
