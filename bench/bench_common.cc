#include "bench_common.hh"

#include <cstdio>

#include "support/logging.hh"

namespace lbp
{
namespace bench
{

const std::vector<int> &
figureBufferSizes()
{
    static const std::vector<int> sizes{16, 32, 64, 128, 256, 512,
                                        1024, 2048};
    return sizes;
}

std::unique_ptr<CompileResult>
compileBench(const std::string &name, OptLevel level)
{
    Program prog = workloads::buildWorkload(name);
    CompileOptions opts;
    opts.level = level;
    auto cr = std::make_unique<CompileResult>();
    compileProgram(prog, opts, *cr);
    return cr;
}

SimStats
simulate(CompileResult &cr, int bufferOps, PredMode mode)
{
    reallocateBuffers(cr, bufferOps);
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.predMode = mode;
    VliwSim sim(cr.code, sc);
    SimStats st = sim.run();
    LBP_ASSERT(st.checksum == cr.goldenChecksum,
               "simulation checksum mismatch for ", cr.ir.name);
    return st;
}

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

void
rule(char c, int n)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace lbp
