/**
 * @file
 * Per-loop attribution: the compiler's bufferability decisions joined
 * with the simulator's per-loop dynamics under one stable identity.
 *
 * Identity. A loop is named "<function>/<header-block>". That is
 * exactly the name buildLoopTable gives LoopStats for hardware loops
 * (the REC/EXEC target block is the loop header), so the compiler's
 * decision log and the simulator's residency stats join by string
 * equality with no side tables. Block names survive the transform
 * stack: if-conversion installs the hyperblock into the header,
 * peeling renames only the peeled *copies* (".peelN"), and collapsing
 * eliminates the outer loop (which the log records as such).
 *
 * Compiler side (LoopDecisionLog). Each transform appends a
 * LoopAttempt per loop it considered — applied or not, with a closed
 * rejection-reason enum and op-count deltas — and buffer allocation
 * writes the terminal LoopDecision (fate, final image size vs.
 * capacity, buffer address). Re-running allocation for another buffer
 * size (reallocateBuffers) overwrites the terminal fields and leaves
 * the transform history intact.
 *
 * Simulator side. Both engines accumulate per-loop ops issued from
 * the buffer vs. the instruction cache at the single fetch-accounting
 * site, so sum(loop.opsFromBuffer) == SimStats::opsFromBuffer holds
 * exactly by construction; buildLoopScorecard cross-checks it the
 * same way the trace integral is checked.
 *
 * The join (LoopScorecard) ranks loops by dynamic ops and prices
 * every rejection: missedOps is the upper-bound buffer-hit gain had
 * the loop been buffered, and the fetch-energy share comes from the
 * CACTI-lite per-access energies.
 */

#ifndef LBP_OBS_LOOP_REPORT_HH
#define LBP_OBS_LOOP_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/cycle_stack.hh"
#include "obs/json.hh"

namespace lbp
{

struct SimStats;
struct FetchEnergy;
struct TraceCacheStats;
enum class TraceBailoutReason : std::uint8_t;

namespace obs
{

class Registry;

/**
 * Why a transformation or the allocator passed a loop over. Closed
 * enum: tools switch on it, so new causes get new values, never
 * free-form strings.
 */
enum class LoopReason
{
    None,               ///< no rejection (applied / buffered)
    TooLarge,           ///< image or expansion exceeds the budget
    HasCall,            ///< body contains CALL/RET (or forbidden op)
    AlreadyPredicated,  ///< body already carries guards
    Irreducible,        ///< body not topologically orderable
    MultiLatch,         ///< more than one backedge
    BadShape,           ///< CFG shape outside the pattern handled
    NotInnermost,       ///< has child loops (only innermost buffer)
    NotCounted,         ///< induction/trip count not recognized
    TripTooSmall,       ///< known trip count below the profit bound
    TripTooLarge,       ///< known trip count above the expansion bound
    NotProfitable,      ///< legal but the cost model said no
    NotSimple,          ///< not a single-block self-loop at the end
    MultiExit,          ///< side exits the transform cannot carry
    PredSlotsExhausted, ///< slot predication ran out of slots/ranges
    ColdLoop,           ///< zero profile benefit
    NoPreheader,        ///< no unique preheader to plant setup code
    SchedFailed,        ///< modulo scheduler found no feasible II
};

const char *loopReasonName(LoopReason r);

/** Terminal outcome of one loop in the compiled program. */
enum class LoopFate
{
    Unknown,    ///< decision not (yet) taken
    Buffered,   ///< hardware loop with a buffer address
    Rejected,   ///< executes, but always fetches from the cache
    Eliminated, ///< no longer exists (peeled away / collapsed into)
};

const char *loopFateName(LoopFate f);

/** One transformation's verdict on one loop. */
struct LoopAttempt
{
    std::string transform;  ///< "if_convert", "peel", "modulo", ...
    bool applied = false;
    LoopReason reason = LoopReason::None;  ///< when !applied
    int opsBefore = 0;      ///< loop body ops before the transform
    int opsAfter = 0;       ///< and after (== opsBefore when skipped)
    // Modulo-schedule outcome (transform == "modulo", applied):
    // achieved II and its lower bounds, so the scheduler-slack cycle
    // class can be cross-checked against the decision log.
    int ii = 0;
    int resMII = 0;
    int recMII = 0;
    std::string note;       ///< free-form detail ("ii=3", trip count)
};

/** Everything the compiler decided about one loop. */
struct LoopDecision
{
    std::string name;       ///< "<fn>/<header-block>" — the join key
    LoopFate fate = LoopFate::Unknown;
    LoopReason reason = LoopReason::None;
    int finalOps = 0;       ///< image size at allocation time
    int bufferCapacity = 0; ///< capacity it was judged against
    int bufAddr = -1;
    double estDynOps = 0.0; ///< profile-weighted static dynamic ops
    std::vector<LoopAttempt> attempts;
};

/**
 * Ordered collection of per-loop decisions, keyed by loop name.
 * Creation order is preserved (pipeline order reads naturally);
 * lookups are O(log n) through a side index.
 */
class LoopDecisionLog
{
  public:
    /** Find-or-create the decision record for @p name. */
    LoopDecision &decision(const std::string &name);

    const LoopDecision *find(const std::string &name) const;

    /**
     * Append one transform attempt to @p name's record. A repeat
     * with the same (transform, applied, reason) — fixpoint drivers
     * re-judge unchanged loops — refreshes the existing entry.
     */
    void addAttempt(const std::string &name, LoopAttempt a);

    const std::vector<LoopDecision> &decisions() const
    { return decisions_; }

    bool empty() const { return decisions_.empty(); }

  private:
    std::vector<LoopDecision> decisions_;
    std::map<std::string, std::size_t> index_;
};

/** One scorecard line: a loop's fate joined with its dynamics. */
struct ScorecardRow
{
    std::string name;
    int loopId = -1;        ///< dense sim id; -1 = never a hw loop
    LoopFate fate = LoopFate::Unknown;
    LoopReason reason = LoopReason::None;
    int imageOps = 0;
    int bufAddr = -1;

    std::uint64_t activations = 0;
    std::uint64_t recordings = 0;
    std::uint64_t evictions = 0;
    std::uint64_t iterations = 0;
    std::uint64_t opsFromBuffer = 0;
    std::uint64_t opsFromCache = 0;
    std::uint64_t dynOps = 0;    ///< buffer + cache ops (ranking key)

    /**
     * Dynamic cost of the rejection: the ops this loop fetched from
     * the cache that a buffered image would have issued from the
     * buffer (upper bound — ignores the one recording pass). Zero for
     * buffered loops.
     */
    std::uint64_t missedOps = 0;

    /**
     * Of opsFromBuffer, the ops the decoded engine's trace cache
     * issued by replay rather than through the general path. Zero
     * when the run had no trace cache (reference engine, cache
     * disabled) or the loop never replayed (untraceable body, trip
     * counts under the engage threshold).
     */
    std::uint64_t replayedOps = 0;
    double replayFraction = 0.0; ///< replayedOps / opsFromBuffer

    /**
     * Buffered activations the trace cache declined, and why (the
     * last reason counted; a loop's verdict is static so it never
     * mixes build-gating reasons, though a short final activation
     * can leave belowEngageThreshold on an otherwise replayed loop).
     * Zero/None when the run had no trace cache.
     */
    std::uint64_t bailouts = 0;
    TraceBailoutReason bailoutReason{};  ///< zero-init == None

    double energyNj = 0.0;  ///< fetch-energy share of this loop

    /**
     * This loop's cycle stack (simulator loops only, when the run
     * carried a CycleStack). Sums with every other row plus the
     * scorecard's outside row to the workload stack.
     */
    bool hasCycles = false;
    CycleRow cycles{};
    std::uint64_t totalCycles = 0;  ///< sum of cycles[]

    std::vector<LoopAttempt> attempts;
};

/** The per-workload loop scorecard. */
struct LoopScorecard
{
    std::string workload;
    int bufferOps = 0;
    std::uint64_t totalOpsFetched = 0;
    std::uint64_t totalOpsFromBuffer = 0;
    std::vector<ScorecardRow> rows;  ///< ranked by dynOps descending

    /** Cycle accounting (present when the run carried a CycleStack). */
    bool hasCycles = false;
    CycleRow workloadCycles{};  ///< per-class totals == SimStats::cycles
    CycleRow outsideCycles{};   ///< the outside-any-loop row
    std::uint64_t totalCycles = 0;  ///< sum of workloadCycles[]
};

/**
 * Join @p log with @p stats. Every simulator loop gets a row with its
 * measured dynamics; decisions without a simulator twin (eliminated
 * loops, natural loops that never became hardware loops) are appended
 * with loopId -1 and the profile-estimated dynOps. Rows are sorted by
 * dynOps descending, then name. @p fe, when given, prices each row's
 * fetch-energy share from the workload-level breakdown. @p tc, when
 * given, attributes the trace cache's per-loop replayed ops to each
 * row (replayedOps / replayFraction stay zero otherwise).
 *
 * Fatal (assert) if sum of per-loop buffer ops != stats.opsFromBuffer
 * — the attribution invariant both engines maintain by construction.
 *
 * @p cs, when given, copies each dense loop's cycle row onto its
 * scorecard row and the workload/outside stacks onto the scorecard
 * (asserting the closed-sum invariant: per-class totals equal
 * stats.cycles and per-loop rows integrate to the workload stack).
 */
LoopScorecard buildLoopScorecard(const std::string &workload,
                                 const LoopDecisionLog &log,
                                 const SimStats &stats, int bufferOps,
                                 const FetchEnergy *fe = nullptr,
                                 const TraceCacheStats *tc = nullptr,
                                 const CycleStack *cs = nullptr);

/** Sum of per-loop buffer-issued ops (the invariant's left side). */
std::uint64_t scorecardBufferOps(const LoopScorecard &sc);

/** Human-oriented aligned table, one row per loop. */
void printScorecard(std::ostream &os, const LoopScorecard &sc);

/**
 * "Where the simulated cycles go" table: one row per loop holding a
 * cycle stack (plus the outside-any-loop row and the workload
 * totals), one column per CycleClass. No-op with a notice when the
 * scorecard carries no cycle data.
 */
void printScorecardCycles(std::ostream &os, const LoopScorecard &sc);

/** Machine-readable form (ints stay exact through obs::Json). */
Json scorecardToJson(const LoopScorecard &sc);

/**
 * Publish each row under "<prefix>.<id3>.*" (row rank, zero-padded):
 * fate/reason/name as infos, dynamics as counters, energy as a gauge.
 */
void publishScorecard(Registry &r, const LoopScorecard &sc,
                      const std::string &prefix = "loop");

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_LOOP_REPORT_HH
