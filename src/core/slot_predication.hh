/**
 * @file
 * Slot-based predication lowering (paper §4.2).
 *
 * After a loop body is scheduled, each operation's issue slot is
 * fixed. Lowering rewrites the scheduled copy of the block so that:
 *
 *  - every predicated consumer keeps only a 1-bit predicate
 *    sensitivity flag and is nullified by its *slot's* standing
 *    predicate;
 *  - predicate defines write directly to the slots of their
 *    consumers (up to two destinations per define; extra defines are
 *    cloned into free predicate-capable slots when a predicate has
 *    consumers in more than two slots);
 *  - predicates consumed outside the block (e.g. by a branch-combine
 *    decode block) keep an additional register destination — the
 *    slot scheme is a loop-kernel mechanism and cross-block
 *    predicates fall back to the register file (documented
 *    substitution; the paper targets kernels for exactly this
 *    reason).
 *
 * Lowering fails (leaving the block on register predication) when two
 * different predicates would need the same slot with overlapping live
 * ranges, or when a needed define clone cannot be placed; failures
 * are counted — the paper reports such intervention is "largely
 * unnecessary" and our statistics let the claim be checked.
 */

#ifndef LBP_CORE_SLOT_PREDICATION_HH
#define LBP_CORE_SLOT_PREDICATION_HH

#include "sched/schedule.hh"

namespace lbp
{

namespace obs
{
class LoopDecisionLog;
}

struct SlotLoweringStats
{
    int blocksAttempted = 0;
    int blocksLowered = 0;
    int blocksFailedConflict = 0;
    int blocksFailedCapacity = 0;
    int predsRangeTooLong = 0; ///< register fallback: range >= II
    int predsQueued = 0; ///< slot-routed only thanks to the queue
    int definesRewritten = 0;
    int definesCloned = 0;
    int predsKeptInRegisters = 0; ///< cross-block predicates
    int sensitiveOps = 0;
};

/**
 * Lower one scheduled loop-body block. @p externalPreds lists
 * predicates consumed outside this block (they keep register
 * destinations). Returns true if the block now uses slot predication.
 */
bool lowerBlockToSlots(const BasicBlock &irBlock, SchedBlock &sb,
                       const Machine &machine,
                       const std::vector<PredId> &externalPreds,
                       SlotLoweringStats &stats,
                       int predQueueDepth = 0);

/**
 * Lower every scheduled simple-loop body in the program. Computes
 * cross-block predicate escapes per function automatically. When
 * @p log is given, every loop body attempted gets a "slot_lowering"
 * LoopAttempt (failures carry PredSlotsExhausted with the failure
 * kind in the note).
 */
SlotLoweringStats lowerProgramToSlots(const Program &prog,
                                      SchedProgram &code,
                                      const Machine &machine,
                                      int predQueueDepth = 0,
                                      obs::LoopDecisionLog *log = nullptr);

} // namespace lbp

#endif // LBP_CORE_SLOT_PREDICATION_HH
