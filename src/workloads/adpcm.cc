/**
 * @file
 * IMA ADPCM codec (the MediaBench adpcm benchmark pair). The
 * encoder/decoder main loops carry several control-flow diamonds
 * (sign handling, the three-step quantizer, index and predictor
 * clamps), which if-conversion merges into a single predicated loop
 * — the paper reports adpcm resolves "for the most part to a single
 * predicated loop" issuing >99% from the buffer once transformed.
 */

#include "workloads/workloads.hh"

#include "workloads/input_data.hh"

namespace lbp
{
namespace workloads
{

namespace
{

const int kIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8,
};

const int kStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
};

constexpr int kSamples = 2048;

struct Layout
{
    std::int64_t indexTab;
    std::int64_t stepTab;
    std::int64_t pcmIn;
    std::int64_t codeBuf;
    std::int64_t pcmOut;
};

Layout
layoutMemory(Program &prog)
{
    Layout l;
    l.indexTab = prog.allocData(16 * 4);
    l.stepTab = prog.allocData(90 * 4);
    l.pcmIn = prog.allocData(kSamples * 2);
    l.codeBuf = prog.allocData(kSamples); // one code byte per sample
    l.pcmOut = prog.allocData(kSamples * 2);
    storeTable32(prog, l.indexTab, kIndexTable, 16);
    storeTable32(prog, l.stepTab, kStepTable, 89);
    fillPcm16(prog, l.pcmIn, kSamples, 0x41d9c0de);
    return l;
}

/**
 * Build the encoder function: coder(in, out, n).
 * One code byte is produced per sample (the MediaBench version packs
 * nibbles; a byte per code keeps the memory behaviour simple while
 * preserving the control structure).
 */
FuncId
buildCoder(Program &prog, const Layout &l)
{
    const FuncId f = prog.newFunction("adpcm_coder");
    Function &fn = prog.functions[f];
    const RegId inP = fn.newReg();
    const RegId outP = fn.newReg();
    const RegId nS = fn.newReg();
    fn.params = {inP, outP, nS};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId valpred = b.iconst(0);
    const RegId index = b.iconst(0);
    const RegId step = b.iconst(7);
    const RegId stepTab = b.iconst(l.stepTab);
    const RegId idxTab = b.iconst(l.indexTab);
    const RegId diff = b.iconst(0);
    const RegId sign = b.iconst(0);
    const RegId delta = b.iconst(0);
    const RegId vpdiff = b.iconst(0);

    b.forLoopReg(0, nS, 1, [&](RegId i) {
        const RegId off = b.shl(R(i), I(1));
        const RegId sample = b.loadH(R(inP), R(off));

        // diff = sample - valpred; sign handling.
        b.subTo(diff, R(sample), R(valpred));
        b.movTo(sign, I(0));
        ifThen(b, CmpCond::LT, R(diff), I(0), [&] {
            b.movTo(sign, I(8));
            b.subTo(diff, I(0), R(diff));
        });

        // Three-step quantizer.
        b.movTo(delta, I(0));
        const RegId vh = b.shra(R(step), I(3));
        b.movTo(vpdiff, R(vh));
        ifThen(b, CmpCond::GE, R(diff), R(step), [&] {
            b.binTo(Opcode::OR, delta, R(delta), I(4));
            b.subTo(diff, R(diff), R(step));
            b.addTo(vpdiff, R(vpdiff), R(step));
        });
        const RegId halfstep = b.shra(R(step), I(1));
        ifThen(b, CmpCond::GE, R(diff), R(halfstep), [&] {
            b.binTo(Opcode::OR, delta, R(delta), I(2));
            b.subTo(diff, R(diff), R(halfstep));
            const RegId h2 = b.shra(R(step), I(1));
            b.addTo(vpdiff, R(vpdiff), R(h2));
        });
        const RegId quarterstep = b.shra(R(step), I(2));
        ifThen(b, CmpCond::GE, R(diff), R(quarterstep), [&] {
            b.binTo(Opcode::OR, delta, R(delta), I(1));
            const RegId h4 = b.shra(R(step), I(2));
            b.addTo(vpdiff, R(vpdiff), R(h4));
        });

        // Predictor update with sign and saturation.
        diamond(b, CmpCond::NE, R(sign), I(0),
                [&] { b.subTo(valpred, R(valpred), R(vpdiff)); },
                [&] { b.addTo(valpred, R(valpred), R(vpdiff)); });
        b.binTo(Opcode::MAX, valpred, R(valpred), I(-32768));
        b.binTo(Opcode::MIN, valpred, R(valpred), I(32767));

        // Index update + clamp, step lookup.
        b.binTo(Opcode::OR, delta, R(delta), R(sign));
        const RegId d4 = b.shl(R(delta), I(2));
        const RegId adj = b.loadW(R(idxTab), R(d4));
        b.addTo(index, R(index), R(adj));
        b.binTo(Opcode::MAX, index, R(index), I(0));
        b.binTo(Opcode::MIN, index, R(index), I(88));
        const RegId i4 = b.shl(R(index), I(2));
        const RegId news = b.loadW(R(stepTab), R(i4));
        b.movTo(step, R(news));

        b.storeB(R(outP), R(i), R(delta));
    });

    b.ret({R(valpred)});
    return f;
}

/** Build the decoder function: decoder(in, out, n). */
FuncId
buildDecoder(Program &prog, const Layout &l)
{
    const FuncId f = prog.newFunction("adpcm_decoder");
    Function &fn = prog.functions[f];
    const RegId inP = fn.newReg();
    const RegId outP = fn.newReg();
    const RegId nS = fn.newReg();
    fn.params = {inP, outP, nS};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId valpred = b.iconst(0);
    const RegId index = b.iconst(0);
    const RegId step = b.iconst(7);
    const RegId stepTab = b.iconst(l.stepTab);
    const RegId idxTab = b.iconst(l.indexTab);
    const RegId vpdiff = b.iconst(0);

    b.forLoopReg(0, nS, 1, [&](RegId i) {
        const RegId delta = b.loadB(R(inP), R(i));

        // Index update + clamp.
        const RegId d4 = b.shl(R(delta), I(2));
        const RegId adj = b.loadW(R(idxTab), R(d4));
        b.addTo(index, R(index), R(adj));
        b.binTo(Opcode::MAX, index, R(index), I(0));
        b.binTo(Opcode::MIN, index, R(index), I(88));

        // Reconstruct vpdiff from the code bits.
        const RegId vh = b.shra(R(step), I(3));
        b.movTo(vpdiff, R(vh));
        const RegId b4 = b.and_(R(delta), I(4));
        ifThen(b, CmpCond::NE, R(b4), I(0), [&] {
            b.addTo(vpdiff, R(vpdiff), R(step));
        });
        const RegId b2 = b.and_(R(delta), I(2));
        ifThen(b, CmpCond::NE, R(b2), I(0), [&] {
            const RegId h = b.shra(R(step), I(1));
            b.addTo(vpdiff, R(vpdiff), R(h));
        });
        const RegId b1 = b.and_(R(delta), I(1));
        ifThen(b, CmpCond::NE, R(b1), I(0), [&] {
            const RegId q = b.shra(R(step), I(2));
            b.addTo(vpdiff, R(vpdiff), R(q));
        });

        const RegId sbit = b.and_(R(delta), I(8));
        diamond(b, CmpCond::NE, R(sbit), I(0),
                [&] { b.subTo(valpred, R(valpred), R(vpdiff)); },
                [&] { b.addTo(valpred, R(valpred), R(vpdiff)); });
        b.binTo(Opcode::MAX, valpred, R(valpred), I(-32768));
        b.binTo(Opcode::MIN, valpred, R(valpred), I(32767));

        const RegId i4 = b.shl(R(index), I(2));
        const RegId news = b.loadW(R(stepTab), R(i4));
        b.movTo(step, R(news));

        const RegId off = b.shl(R(i), I(1));
        b.storeH(R(outP), R(off), R(valpred));
    });

    b.ret({R(valpred)});
    return f;
}

Program
buildAdpcm(bool encode)
{
    Program prog;
    prog.name = encode ? "adpcm_enc" : "adpcm_dec";
    Layout l = layoutMemory(prog);

    const FuncId coder = buildCoder(prog, l);
    const FuncId decoder = buildDecoder(prog, l);

    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    if (encode) {
        auto r = b.call(coder,
                        {I(l.pcmIn), I(l.codeBuf), I(kSamples)}, 1);
        b.ret({Operand::reg(r[0])});
        prog.checksumBase = l.codeBuf;
        prog.checksumSize = kSamples;
    } else {
        // Produce codes first (same deterministic path the decoder
        // input file would provide), then decode them.
        auto r1 = b.call(coder,
                         {I(l.pcmIn), I(l.codeBuf), I(kSamples)}, 1);
        (void)r1;
        auto r2 = b.call(decoder,
                         {I(l.codeBuf), I(l.pcmOut), I(kSamples)}, 1);
        b.ret({Operand::reg(r2[0])});
        prog.checksumBase = l.pcmOut;
        prog.checksumSize = kSamples * 2;
    }
    return prog;
}

} // namespace

Program
buildAdpcmEnc()
{
    return buildAdpcm(true);
}

Program
buildAdpcmDec()
{
    return buildAdpcm(false);
}

} // namespace workloads
} // namespace lbp
