/**
 * @file
 * Natural-loop nesting analysis plus simple induction/trip-count
 * recognition, the enabling analysis for peeling, collapsing,
 * counted-loop conversion, and buffer scheduling.
 */

#ifndef LBP_ANALYSIS_LOOP_INFO_HH
#define LBP_ANALYSIS_LOOP_INFO_HH

#include <vector>

#include "analysis/dominators.hh"
#include "ir/function.hh"

namespace lbp
{

/**
 * Recognized counted-loop shape:
 *   preheader: MOV ind = start           (or constant-reaching def)
 *   latch:     ADD ind = ind, step
 *              BR cond ind, bound -> header
 */
struct InductionInfo
{
    bool valid = false;
    RegId reg = 0;
    std::int64_t start = 0;       ///< meaningful when startKnown
    bool startKnown = false;
    std::int64_t step = 0;
    CmpCond cond = CmpCond::LT;
    Operand bound;                ///< imm or loop-invariant reg
    /** Trip count if statically computable, else -1. */
    std::int64_t constTrip = -1;
};

/** One natural loop. */
struct Loop
{
    int index = -1;
    BlockId header = kNoBlock;
    /** Blocks in the loop, header first. */
    std::vector<BlockId> blocks;
    /** Latch blocks (sources of backedges). */
    std::vector<BlockId> latches;
    /** Sole block outside the loop that falls/branches into header. */
    BlockId preheader = kNoBlock;
    int depth = 1;
    int parent = -1;              ///< index of enclosing loop, or -1
    std::vector<int> children;    ///< indices of nested loops

    InductionInfo induction;

    /** Profile: total header entries (loop invocations). */
    double invocations = 0.0;
    /** Profile: total iterations (header executions). */
    double iterations = 0.0;

    bool contains(BlockId b) const;

    /** Average trip count per invocation (profile-derived). */
    double avgTrip() const
    { return invocations > 0 ? iterations / invocations : 0.0; }
};

/** Loop forest of one function. */
class LoopInfo
{
  public:
    explicit LoopInfo(const Function &fn);

    const std::vector<Loop> &loops() const { return loops_; }
    std::vector<Loop> &loops() { return loops_; }

    /** Innermost loop containing @p b, or -1. */
    int loopOf(BlockId b) const;

    /** True if loop @p idx contains no other loop. */
    bool isInnermost(int idx) const { return loops_[idx].children.empty(); }

    /**
     * A "simple" loop: single block that is both header and latch,
     * whose only internal control is the loop-back branch — the shape
     * a loop buffer can hold.
     */
    bool isSimple(int idx) const;

    /** Populate Loop::invocations/iterations from block weights. */
    void attachProfile(const Function &fn);

  private:
    void analyzeInduction(const Function &fn, Loop &loop);

    std::vector<Loop> loops_;
    std::vector<int> loopOf_;
};

} // namespace lbp

#endif // LBP_ANALYSIS_LOOP_INFO_HH
