/**
 * @file
 * Lightweight statistics helpers: weighted histograms and cumulative
 * distributions, used to reproduce the paper's Figure 3 CDFs and to
 * aggregate simulator counters.
 */

#ifndef LBP_SUPPORT_STATS_HH
#define LBP_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lbp
{

/** A weighted histogram over integer bins. */
class Histogram
{
  public:
    /** Add @p weight observations of value @p v. */
    void add(std::int64_t v, double weight = 1.0);

    /** Total weight across all bins. */
    double total() const;

    /** Weighted mean; 0 if empty. */
    double mean() const;

    /** Largest observed value; 0 if empty. */
    std::int64_t maxValue() const;

    /** Fraction of weight at values <= v (a CDF sample point). */
    double cumulativeAt(std::int64_t v) const;

    /**
     * Emit CDF rows (value, cumulative fraction) at each distinct
     * observed value.
     */
    std::vector<std::pair<std::int64_t, double>> cdf() const;

    const std::map<std::int64_t, double> &bins() const { return bins_; }

    bool empty() const { return bins_.empty(); }

  private:
    std::map<std::int64_t, double> bins_;
};

/** Render a fraction as a fixed-width percentage string. */
std::string pct(double fraction, int decimals = 1);

/** Render a double with fixed decimals. */
std::string fixed(double v, int decimals = 2);

/** Geometric mean of a vector of positive values; 0 if empty. */
double geomean(const std::vector<double> &vals);

} // namespace lbp

#endif // LBP_SUPPORT_STATS_HH
