#include "core/compiler.hh"

#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "sched/list_scheduler.hh"
#include "sched/modulo_scheduler.hh"
#include "support/logging.hh"
#include "transform/classic_opts.hh"

namespace lbp
{

namespace
{

/** Is this block a simple hardware-loop body? */
bool
isSimpleLoopBody(const BasicBlock &bb)
{
    const Operation *term = bb.terminator();
    if (!term)
        return false;
    if (term->op == Opcode::BR_CLOOP || term->op == Opcode::BR_WLOOP)
        return term->target == bb.id;
    if (term->op == Opcode::BR || term->op == Opcode::JUMP)
        return term->target == bb.id;
    return false;
}

void
checkStage(const Program &prog, const CompileOptions &opts,
           std::uint64_t golden, const char *stage)
{
    if (!opts.verifyStages)
        return;
    Interpreter interp(prog);
    const auto r = interp.run(opts.profileArgs);
    if (r.checksum != golden) {
        LBP_FATAL("semantic checksum mismatch after stage '", stage,
                  "' in program '", prog.name, "': golden=",
                  golden, " got=", r.checksum);
    }
}

} // namespace

void
compileProgram(const Program &input, const CompileOptions &opts,
               CompileResult &out)
{
    out.ir = input;
    Program &prog = out.ir;
    out.originalOps = prog.sizeOps();
    verifyOrDie(prog);

    // 1. Profile + golden checksum.
    auto run0 = profileProgram(prog, opts.profileArgs);
    out.goldenChecksum = run0.result.checksum;

    // 2. Profile-guided inlining (<= 50% expansion, per the paper).
    if (opts.doInline) {
        out.inlineStats = inlineHotCalls(prog, run0.profile);
        verifyOrDie(prog);
        checkStage(prog, opts, out.goldenChecksum, "inline");
    }

    // 3. Classic optimization + height reduction (reassociation is
    //    part of the paper's "traditional loop optimizations" and the
    //    Figure-2d height-reducing step).
    optimizeProgram(prog);
    out.reassocStats = reassociate(prog);
    optimizeProgram(prog);
    verifyOrDie(prog);
    checkStage(prog, opts, out.goldenChecksum, "classic-opts");

    // 4. Control transformations (Aggressive only).
    if (opts.level == OptLevel::Aggressive) {
        out.peelStats = peelLoops(prog);
        verifyOrDie(prog);
        checkStage(prog, opts, out.goldenChecksum, "peel");

        VerifyOptions hyperOk;
        hyperOk.allowInternalBranches = true;

        out.ifConvertStats = ifConvertLoops(prog);
        verifyOrDie(prog, hyperOk);
        checkStage(prog, opts, out.goldenChecksum, "if-convert");

        out.collapseStats = collapseLoops(prog);
        verifyOrDie(prog, hyperOk);
        checkStage(prog, opts, out.goldenChecksum, "collapse");

        // Collapsing can expose newly-childless outer loops.
        {
            auto s2 = ifConvertLoops(prog);
            out.ifConvertStats.loopsConverted += s2.loopsConverted;
            out.ifConvertStats.blocksMerged += s2.blocksMerged;
            out.ifConvertStats.predDefsInserted += s2.predDefsInserted;
            out.ifConvertStats.sideExits += s2.sideExits;
        }
        verifyOrDie(prog, hyperOk);
        checkStage(prog, opts, out.goldenChecksum, "if-convert-2");

        out.branchCombineStats = combineBranches(prog);
        verifyOrDie(prog, hyperOk);
        checkStage(prog, opts, out.goldenChecksum, "branch-combine");

        out.promoteStats = promoteOperations(prog);
        verifyOrDie(prog, hyperOk);
        checkStage(prog, opts, out.goldenChecksum, "promote");

        optimizeProgram(prog);
        {
            auto r2 = reassociate(prog);
            out.reassocStats.chainsRebalanced += r2.chainsRebalanced;
            out.reassocStats.opsInChains += r2.opsInChains;
        }
        optimizeProgram(prog);
        verifyOrDie(prog, hyperOk);
        checkStage(prog, opts, out.goldenChecksum, "classic-opts-2");
    }

    // 5. Hardware-loop conversion (both levels).
    out.countedLoopStats = convertCountedLoops(prog);
    {
        VerifyOptions v;
        v.allowInternalBranches = opts.level == OptLevel::Aggressive;
        verifyOrDie(prog, v);
    }
    checkStage(prog, opts, out.goldenChecksum, "counted-loop");

    // 6. Refresh the profile (weights drive buffer allocation).
    auto run1 = profileProgram(prog, opts.profileArgs);
    LBP_ASSERT(run1.result.checksum == out.goldenChecksum,
               "final profile checksum mismatch");
    out.transformedChecksum = run1.result.checksum;
    out.finalOps = prog.sizeOps();

    // 7. Schedule.
    out.code.ir = &prog;
    out.code.functions.clear();
    out.code.functions.resize(prog.functions.size());
    for (const auto &fn : prog.functions) {
        SchedFunction &sf = out.code.functions[fn.id];
        sf.func = fn.id;
        sf.blocks.resize(fn.blocks.size());
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            SchedBlock sb;
            const bool loopBody = isSimpleLoopBody(bb);
            if (loopBody)
                ++out.simpleLoops;
            if (loopBody && opts.moduloSchedule) {
                ModuloOptions mo;
                mo.rotatingRegisters = opts.rotatingRegisters;
                sb = moduloScheduleLoop(bb, out.machine, mo);
                if (sb.valid) {
                    ++out.moduloLoops;
                } else {
                    sb = listScheduleBlock(bb, out.machine);
                    sb.isLoopBody = true;
                }
            } else {
                sb = listScheduleBlock(bb, out.machine);
                sb.isLoopBody = loopBody;
            }
            sf.blocks[bb.id] = std::move(sb);
        }
    }

    // 8. Slot-predication lowering.
    if (opts.level == OptLevel::Aggressive && opts.slotLowering) {
        out.slotStats = lowerProgramToSlots(prog, out.code,
                                            out.machine,
                                            opts.predQueueDepth);
    }

    // 9. Buffer allocation + link.
    BufferAllocOptions ba;
    ba.bufferOps = opts.bufferOps;
    out.bufferAlloc = allocateLoopBuffers(prog, out.code, ba);
    out.code.link();
    out.scheduledOps = out.code.sizeOps();
}

void
reallocateBuffers(CompileResult &result, int bufferOps)
{
    BufferAllocOptions ba;
    ba.bufferOps = bufferOps;
    result.bufferAlloc =
        allocateLoopBuffers(result.ir, result.code, ba);
    result.code.link();
}

} // namespace lbp
