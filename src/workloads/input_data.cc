#include "workloads/input_data.hh"

#include <cmath>

#include "support/random.hh"

namespace lbp
{
namespace workloads
{

void
fillPcm16(Program &prog, std::int64_t base, int n, std::uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double phase = static_cast<double>(i) * 0.059;
        const double tone = 6000.0 * std::sin(phase) +
                            2500.0 * std::sin(phase * 3.7);
        const std::int64_t noise = rng.nextRange(-800, 800);
        std::int64_t v = static_cast<std::int64_t>(tone) + noise;
        v = std::clamp<std::int64_t>(v, -32768, 32767);
        prog.poke16(base + 2 * i, static_cast<std::int16_t>(v));
    }
}

void
fillBytes(Program &prog, std::int64_t base, int n, std::uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        prog.poke8(base + i, static_cast<std::uint8_t>(rng.next()));
}

void
fillWords(Program &prog, std::int64_t base, int n, std::int64_t lo,
          std::int64_t hi, std::uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        prog.poke32(base + 4 * i,
                    static_cast<std::int32_t>(rng.nextRange(lo, hi)));
    }
}

void
storeTable32(Program &prog, std::int64_t base, const int *table, int n)
{
    for (int i = 0; i < n; ++i)
        prog.poke32(base + 4 * i, table[i]);
}

void
diamond(IRBuilder &b, CmpCond c, Operand x, Operand y,
        const std::function<void()> &thenFn,
        const std::function<void()> &elseFn)
{
    const BlockId thenB = b.makeBlock();
    const BlockId elseB = b.makeBlock();
    const BlockId join = b.makeBlock();
    b.br(c, x, y, thenB);
    b.fallTo(elseB);
    b.at(elseB);
    if (elseFn)
        elseFn();
    b.jump(join);
    b.at(thenB);
    if (thenFn)
        thenFn();
    b.fallTo(join);
    b.at(join);
}

void
ifThen(IRBuilder &b, CmpCond c, Operand x, Operand y,
       const std::function<void()> &thenFn)
{
    const BlockId thenB = b.makeBlock();
    const BlockId join = b.makeBlock();
    b.br(negateCond(c), x, y, join);
    b.fallTo(thenB);
    b.at(thenB);
    if (thenFn)
        thenFn();
    b.fallTo(join);
    b.at(join);
}

void
padOps(IRBuilder &b, int count, const std::vector<RegId> &accs)
{
    // Mixed op kinds so the padding exercises several unit classes
    // without creating long serial chains.
    for (int i = 0; i < count; ++i) {
        const RegId acc = accs[i % accs.size()];
        switch (i % 4) {
          case 0:
            b.addTo(acc, Operand::reg(acc), Operand::imm(i + 1));
            break;
          case 1:
            b.binTo(Opcode::XOR, acc, Operand::reg(acc),
                    Operand::imm(0x5a5a + i));
            break;
          case 2:
            b.binTo(Opcode::MAX, acc, Operand::reg(acc),
                    Operand::imm(-1000 + i));
            break;
          default:
            b.binTo(Opcode::AND, acc, Operand::reg(acc),
                    Operand::imm(0x0fffffff));
            break;
        }
    }
}

} // namespace workloads
} // namespace lbp
