/**
 * @file
 * Expression reassociation (height reduction). The paper's Figure-2d
 * walkthrough names this among the transformations that keep
 * collapsing/pipelining profitable: a serial chain of k associative
 * operations (acc = ((a+b)+c)+d...) is rebalanced into a
 * ceil(log2)-depth tree, shortening both the critical path within an
 * iteration and accumulator recurrences across iterations.
 *
 * A chain is rewritten only when it is provably safe: same opcode and
 * guard throughout, each intermediate consumed exactly once by the
 * next link, no interleaved reads of the chained destination, and no
 * interleaved writes to any leaf operand (the rebuilt tree issues at
 * the final link's position).
 */

#ifndef LBP_TRANSFORM_REASSOCIATE_HH
#define LBP_TRANSFORM_REASSOCIATE_HH

#include "ir/program.hh"

namespace lbp
{

struct ReassociateStats
{
    int chainsRebalanced = 0;
    int opsInChains = 0;
};

/** Rebalance associative chains in every block of @p fn. */
ReassociateStats reassociate(Function &fn);

/** Program-wide driver. */
ReassociateStats reassociate(Program &prog);

} // namespace lbp

#endif // LBP_TRANSFORM_REASSOCIATE_HH
