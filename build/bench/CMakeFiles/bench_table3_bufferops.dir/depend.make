# Empty dependencies file for bench_table3_bufferops.
# This may be replaced when dependencies are built.
