#include "transform/if_convert.hh"

#include <algorithm>
#include <map>

#include "analysis/loop_info.hh"
#include "obs/loop_report.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** An in-loop CFG edge with its branch condition. */
struct InEdge
{
    BlockId from = kNoBlock;
    bool conditional = false;
    bool onTaken = false;       ///< condition sense (taken vs fall)
};

/**
 * Is every op in the block convertible? Returns LoopReason::None when
 * eligible, otherwise the rejection reason.
 */
obs::LoopReason
blockEligible(const BasicBlock &bb)
{
    for (const auto &op : bb.ops) {
        switch (op.op) {
          case Opcode::CALL:
          case Opcode::RET:
            return obs::LoopReason::HasCall;
          case Opcode::REC_CLOOP:
          case Opcode::REC_WLOOP:
          case Opcode::EXEC_CLOOP:
          case Opcode::EXEC_WLOOP:
          case Opcode::BR_CLOOP:
          case Opcode::BR_WLOOP:
            return obs::LoopReason::BadShape;
          default:
            break;
        }
        // Pre-existing guards inside a candidate region are not
        // combined (would need predicate AND chains).
        if (op.hasGuard())
            return obs::LoopReason::AlreadyPredicated;
        // Only terminating branches are supported as input shapes.
        if ((op.op == Opcode::BR || op.op == Opcode::JUMP) &&
            &op != &bb.ops.back()) {
            return obs::LoopReason::BadShape;
        }
    }
    return obs::LoopReason::None;
}

/**
 * Try to if-convert one loop; returns true if the CFG changed.
 */
bool
convertLoop(Function &fn, const Loop &loop,
            const IfConvertOptions &opts, IfConvertStats &st,
            obs::LoopDecisionLog *log)
{
    if (loop.blocks.size() < 2)
        return false; // already simple — nothing to attempt

    int total_ops = 0;
    for (BlockId b : loop.blocks)
        total_ops += fn.blocks[b].sizeOps();

    auto reject = [&](obs::LoopReason r, std::string note = "") {
        if (log) {
            obs::LoopAttempt a;
            a.transform = "if_convert";
            a.reason = r;
            a.opsBefore = a.opsAfter = total_ops;
            a.note = std::move(note);
            log->addAttempt(fn.name + "/" +
                                fn.blocks[loop.header].name,
                            std::move(a));
        }
        return false;
    };

    if (loop.latches.size() != 1)
        return reject(obs::LoopReason::MultiLatch);
    const BlockId latch = loop.latches[0];

    for (BlockId b : loop.blocks) {
        const obs::LoopReason why = blockEligible(fn.blocks[b]);
        if (why != obs::LoopReason::None)
            return reject(why, fn.blocks[b].name);
    }
    if (total_ops > opts.maxOps) {
        return reject(obs::LoopReason::TooLarge,
                      std::to_string(total_ops) + " > " +
                          std::to_string(opts.maxOps) + " ops");
    }

    // Topological order of body blocks with the backedge removed:
    // reuse function RPO restricted to loop blocks (header first).
    std::vector<BlockId> topo;
    for (BlockId b : fn.reversePostorder()) {
        if (loop.contains(b))
            topo.push_back(b);
    }
    if (topo.empty() || topo.front() != loop.header)
        return reject(obs::LoopReason::Irreducible);
    if (topo.size() != loop.blocks.size())
        return reject(obs::LoopReason::Irreducible);
    // The latch must be last in topological order; otherwise blocks
    // after the latch would need the backedge condition folded in.
    if (topo.back() != latch)
        return reject(obs::LoopReason::BadShape, "latch not last");

    // Gather in-loop forward edges per target block.
    std::map<BlockId, std::vector<InEdge>> inEdges;
    std::map<BlockId, std::vector<BlockId>> fwdSuccs;
    auto addEdge = [&](BlockId from, BlockId to, bool conditional,
                       bool onTaken) {
        if (!loop.contains(to) || to == loop.header)
            return;
        inEdges[to].push_back({from, conditional, onTaken});
        fwdSuccs[from].push_back(to);
    };

    for (BlockId b : topo) {
        const BasicBlock &bb = fn.blocks[b];
        const Operation *term = bb.terminator();
        if (term && term->op == Opcode::BR) {
            addEdge(b, term->target, true, true);
            if (bb.fallthrough != kNoBlock)
                addEdge(b, bb.fallthrough, true, false);
        } else if (term && term->op == Opcode::JUMP) {
            addEdge(b, term->target, false, false);
        } else if (bb.fallthrough != kNoBlock) {
            addEdge(b, bb.fallthrough, false, false);
        }
    }

    // alwaysReached[b]: every header->latch path through the forward
    // (acyclic, in-loop) graph passes through b. Such blocks execute
    // on every non-exiting iteration and need no guard — side exits
    // transfer control away instead of falsifying their predicate.
    auto reachesLatchAvoiding = [&](BlockId avoid) {
        if (avoid == loop.header || avoid == latch)
            return false; // endpoints are trivially on every path
        std::vector<char> seen(fn.blocks.size(), 0);
        std::vector<BlockId> work{loop.header};
        seen[loop.header] = 1;
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            if (b == latch)
                return true;
            auto it = fwdSuccs.find(b);
            if (it == fwdSuccs.end())
                continue;
            for (BlockId s : it->second) {
                if (s != avoid && !seen[s]) {
                    seen[s] = 1;
                    work.push_back(s);
                }
            }
        }
        return false;
    };
    std::map<BlockId, bool> always;
    for (BlockId b : topo)
        always[b] = !reachesLatchAvoiding(b);

    // Assign a predicate to each block.
    std::map<BlockId, PredId> predOf;
    std::vector<PredId> needClear;
    for (BlockId b : topo) {
        if (b == loop.header || always[b]) {
            predOf[b] = kNoPred;
            continue;
        }
        auto it = inEdges.find(b);
        LBP_ASSERT(it != inEdges.end() && !it->second.empty(),
                   "unreachable loop block ", fn.blocks[b].name);
        const auto &edges = it->second;
        if (edges.size() == 1 && !edges[0].conditional) {
            // Single unconditional predecessor: share its predicate.
            predOf[b] = predOf.at(edges[0].from);
        } else {
            PredId p = fn.newPred();
            predOf[b] = p;
            if (edges.size() > 1)
                needClear.push_back(p);
        }
    }

    // Build the merged operation list.
    std::vector<Operation> merged;
    auto emit = [&](Operation op) -> Operation & {
        if (op.id == 0)
            op.id = fn.newOpId();
        merged.push_back(std::move(op));
        return merged.back();
    };

    // Clear merge-point predicates at the top of each iteration.
    for (PredId p : needClear) {
        emit(makePredDef(PredDefKind::UT, p, PredDefKind::NONE, 0,
                         CmpCond::FALSE_, Operand::imm(0),
                         Operand::imm(0)));
        ++st.predDefsInserted;
    }

    BlockId loopExit = kNoBlock; // fallthrough after the loop
    bool backedgeEmitted = false;

    for (BlockId b : topo) {
        const BasicBlock &bb = fn.blocks[b];
        const PredId myPred = predOf.at(b);
        const Operation *term = bb.terminator();
        const size_t nBody =
            term ? bb.ops.size() - 1 : bb.ops.size();

        for (size_t i = 0; i < nBody; ++i) {
            Operation op = bb.ops[i];
            op.guard = myPred;
            emit(std::move(op));
        }

        // Unconditional-edge predicate contribution to a multi-pred
        // in-loop target whose predicate differs from ours.
        auto contribute = [&](BlockId tgt) {
            const PredId pt = predOf.at(tgt);
            if (pt == kNoPred || pt == myPred)
                return;
            Operation d = makePredDef(PredDefKind::OT, pt,
                                      PredDefKind::NONE, 0,
                                      CmpCond::TRUE_, Operand::imm(0),
                                      Operand::imm(0));
            d.guard = myPred;
            emit(std::move(d));
            ++st.predDefsInserted;
        };

        const bool isLatch = (b == latch);

        if (!term) {
            LBP_ASSERT(bb.fallthrough != kNoBlock,
                       "loop block without successor");
            LBP_ASSERT(!isLatch, "latch without terminator");
            if (loop.contains(bb.fallthrough) &&
                bb.fallthrough != loop.header) {
                contribute(bb.fallthrough);
            }
            continue;
        }

        if (term->op == Opcode::JUMP) {
            const BlockId tgt = term->target;
            if (tgt == loop.header) {
                // Unconditional backedge (exits happen via side
                // exits earlier in the body).
                LBP_ASSERT(isLatch, "backedge from non-latch");
                Operation j = makeJump(loop.header);
                j.guard = myPred;
                emit(std::move(j));
                backedgeEmitted = true;
            } else if (!loop.contains(tgt)) {
                // Unconditional exit from this path: a side exit
                // guarded on the block predicate.
                Operation j = makeJump(tgt);
                j.guard = myPred;
                emit(std::move(j));
                ++st.sideExits;
            } else {
                contribute(tgt);
            }
            continue;
        }

        LBP_ASSERT(term->op == Opcode::BR, "unexpected terminator");
        const BlockId tTgt = term->target;
        const BlockId fTgt = bb.fallthrough;
        LBP_ASSERT(fTgt != kNoBlock, "conditional without fallthrough");

        const bool tIn = loop.contains(tTgt) && tTgt != loop.header;
        const bool fIn = loop.contains(fTgt) && fTgt != loop.header;
        const bool tBack = tTgt == loop.header;
        const bool fBack = fTgt == loop.header;

        if (isLatch && (tBack || fBack)) {
            // Bottom-test backedge. Normalize so the taken direction
            // loops back; the other direction must leave the loop.
            CmpCond c = term->cond;
            BlockId exit_tgt;
            if (tBack) {
                if (fIn) // latch falls into the body
                    return reject(obs::LoopReason::BadShape,
                                  "latch falls into body");
                exit_tgt = fTgt;
            } else {
                if (tIn)
                    return reject(obs::LoopReason::BadShape,
                                  "latch falls into body");
                c = negateCond(c);
                exit_tgt = tTgt;
                // The original taken target becomes a side exit; the
                // normalized branch falls through to it. Emit an
                // explicit jump after the backedge below.
            }
            Operation back = makeBr(c, term->srcs[0], term->srcs[1],
                                    loop.header);
            back.guard = myPred;
            emit(std::move(back));
            backedgeEmitted = true;
            if (tBack) {
                loopExit = exit_tgt;
            } else {
                // Fall out of the loop to the original taken target.
                loopExit = exit_tgt;
            }
            continue;
        }

        // General conditional inside the body. Compute destination
        // predicates with a single dual-destination define where
        // possible; directions that leave the loop become side exits.
        PredDefKind kT = PredDefKind::NONE, kF = PredDefKind::NONE;
        PredId pT = 0, pF = 0;
        PredId exitPredT = kNoPred, exitPredF = kNoPred;

        if (tIn) {
            const PredId pt = predOf.at(tTgt);
            if (pt != kNoPred) {
                pT = pt;
                kT = inEdges.at(tTgt).size() == 1 ? PredDefKind::UT
                                                  : PredDefKind::OT;
            }
        } else {
            LBP_ASSERT(!tBack, "non-latch backedge");
            exitPredT = fn.newPred();
            kT = PredDefKind::UT;
            pT = exitPredT;
        }
        if (fIn) {
            const PredId pf = predOf.at(fTgt);
            if (pf != kNoPred) {
                pF = pf;
                kF = inEdges.at(fTgt).size() == 1 ? PredDefKind::UF
                                                  : PredDefKind::OF;
            }
        } else {
            LBP_ASSERT(!fBack, "non-latch backedge (fall)");
            exitPredF = fn.newPred();
            kF = PredDefKind::UF;
            pF = exitPredF;
        }

        if (kT != PredDefKind::NONE && kF != PredDefKind::NONE) {
            Operation d = makePredDef(kT, pT, kF, pF, term->cond,
                                      term->srcs[0], term->srcs[1]);
            d.guard = myPred;
            emit(std::move(d));
            ++st.predDefsInserted;
        } else if (kT != PredDefKind::NONE) {
            Operation d = makePredDef(kT, pT, PredDefKind::NONE, 0,
                                      term->cond, term->srcs[0],
                                      term->srcs[1]);
            d.guard = myPred;
            emit(std::move(d));
            ++st.predDefsInserted;
        } else if (kF != PredDefKind::NONE) {
            Operation d = makePredDef(kF, pF, PredDefKind::NONE, 0,
                                      term->cond, term->srcs[0],
                                      term->srcs[1]);
            d.guard = myPred;
            emit(std::move(d));
            ++st.predDefsInserted;
        }
        if (exitPredT != kNoPred) {
            Operation j = makeJump(tTgt);
            j.guard = exitPredT;
            emit(std::move(j));
            ++st.sideExits;
        }
        if (exitPredF != kNoPred) {
            Operation j = makeJump(fTgt);
            j.guard = exitPredF;
            emit(std::move(j));
            ++st.sideExits;
        }
    }

    if (!backedgeEmitted) // should not happen; be safe
        return reject(obs::LoopReason::BadShape, "no backedge");

    // Install the hyperblock into the header; kill the other blocks.
    BasicBlock &hb = fn.blocks[loop.header];
    hb.ops = std::move(merged);
    hb.fallthrough = loopExit;
    hb.isHyperblock = true;
    if (log) {
        obs::LoopAttempt a;
        a.transform = "if_convert";
        a.applied = true;
        a.opsBefore = total_ops;
        a.opsAfter = hb.sizeOps();
        log->addAttempt(fn.name + "/" + hb.name, std::move(a));
    }
    for (BlockId b : topo) {
        if (b == loop.header)
            continue;
        fn.blocks[b].dead = true;
        fn.blocks[b].ops.clear();
        fn.blocks[b].fallthrough = kNoBlock;
        ++st.blocksMerged;
    }
    ++st.loopsConverted;
    return true;
}

} // namespace

IfConvertStats
ifConvertLoops(Function &fn, const IfConvertOptions &opts,
               obs::LoopDecisionLog *log)
{
    IfConvertStats st;
    // Convert one loop at a time, innermost first, recomputing the
    // loop forest after each change.
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 200) {
        changed = false;
        LoopInfo li(fn);
        std::vector<int> order;
        for (const auto &l : li.loops())
            order.push_back(l.index);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return li.loops()[a].depth > li.loops()[b].depth;
        });
        for (int idx : order) {
            const Loop &l = li.loops()[idx];
            if (!l.children.empty())
                continue; // convert inner loops first
            if (opts.requireProfile) {
                double w = 0;
                for (BlockId b : l.blocks)
                    w += fn.blocks[b].weight;
                if (w <= 0)
                    continue;
            }
            if (convertLoop(fn, l, opts, st, log)) {
                changed = true;
                break; // loop forest is stale; recompute
            }
        }
    }
    return st;
}

IfConvertStats
ifConvertLoops(Program &prog, const IfConvertOptions &opts,
               obs::LoopDecisionLog *log)
{
    IfConvertStats st;
    for (auto &fn : prog.functions) {
        auto s = ifConvertLoops(fn, opts, log);
        st.loopsConverted += s.loopsConverted;
        st.blocksMerged += s.blocksMerged;
        st.predDefsInserted += s.predDefsInserted;
        st.sideExits += s.sideExits;
    }
    return st;
}

} // namespace lbp
