/**
 * @file
 * Unit tests for the support layer: deterministic RNG, histograms,
 * logging helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"

namespace lbp
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Histogram, BasicAccumulation)
{
    Histogram h;
    h.add(1, 2.0);
    h.add(3, 1.0);
    h.add(1, 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1 * 3.0 + 3 * 1.0) / 4.0);
    EXPECT_EQ(h.maxValue(), 3);
}

TEST(Histogram, Cdf)
{
    Histogram h;
    h.add(1, 1);
    h.add(2, 1);
    h.add(4, 2);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(1), 0.25);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(3), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(4), 1.0);
    auto rows = h.cdf();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows.back().first, 4);
    EXPECT_DOUBLE_EQ(rows.back().second, 1.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.total(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0);
    EXPECT_EQ(h.maxValue(), 0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(5), 0);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(pct(0.5), "50.0%");
    EXPECT_EQ(pct(0.123, 2), "12.30%");
    EXPECT_EQ(fixed(1.5, 1), "1.5");
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(LBP_FATAL("user error ", 42), std::runtime_error);
}

} // namespace
} // namespace lbp
