file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_passes.dir/bench_micro_passes.cc.o"
  "CMakeFiles/bench_micro_passes.dir/bench_micro_passes.cc.o.d"
  "bench_micro_passes"
  "bench_micro_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
