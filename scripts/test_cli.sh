#!/usr/bin/env bash
# CLI-level tests for tools/lbp_stats, driven by ctest (label: obs).
#
#   test_cli.sh <lbp_stats-binary> <golden-dir> <case>
#
# Cases:
#   run_golden    `run` table output matches the checked-in golden,
#                 after dropping the nondeterministic phase-timing
#                 gauges (names ending in ".ms") — every other line,
#                 counters and energies included, is bit-exact.
#   loops_golden  `loops` scorecard is fully deterministic (counters
#                 and fixed-precision energies only) and matches the
#                 golden verbatim.
#   diff_exit     `diff` exits 0 on identical dumps and 1 on a dump
#                 with one mutated counter, naming the mutated key.
set -u

LBP_STATS=$1
GOLDEN_DIR=$2
CASE=$3

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

case "$CASE" in
  run_golden)
    "$LBP_STATS" run adpcm_dec --buffer=256 | grep -v '\.ms  *' \
        > "$TMP/run.txt" || fail "lbp_stats run exited nonzero"
    diff -u "$GOLDEN_DIR/lbp_stats_run_adpcm_dec.txt" "$TMP/run.txt" \
        || fail "run output diverged from golden"
    ;;

  loops_golden)
    "$LBP_STATS" loops adpcm_enc --buffer=256 > "$TMP/loops.txt" \
        || fail "lbp_stats loops exited nonzero"
    diff -u "$GOLDEN_DIR/lbp_stats_loops_adpcm_enc.txt" \
        "$TMP/loops.txt" || fail "loops scorecard diverged from golden"
    ;;

  diff_exit)
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"

    "$LBP_STATS" diff "$TMP/a.json" "$TMP/a.json" > "$TMP/same.txt"
    [ $? -eq 0 ] || fail "self-diff should exit 0"
    grep -q identical "$TMP/same.txt" \
        || fail "self-diff should print 'identical'"

    # Mutate one counter value (cycles: 73781 -> 73782).
    sed 's/"sim\.cycles": *\([0-9]*\)/"sim.cycles": 9\1/' \
        "$TMP/a.json" > "$TMP/b.json"
    cmp -s "$TMP/a.json" "$TMP/b.json" \
        && fail "sed mutation did not change the dump"

    "$LBP_STATS" diff "$TMP/a.json" "$TMP/b.json" > "$TMP/diff.txt"
    rc=$?
    [ $rc -eq 1 ] || fail "diff on mutated dump exited $rc, want 1"
    grep -q 'sim\.cycles' "$TMP/diff.txt" \
        || fail "diff output should name the mutated key"
    ;;

  *)
    fail "unknown case '$CASE'"
    ;;
esac

echo "PASS: $CASE"
