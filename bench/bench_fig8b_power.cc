/**
 * @file
 * Figure 8b: estimated instruction fetch power, normalized to
 * buffer-less issue of traditionally-optimized code. Three bars per
 * benchmark: unbuffered baseline (1.0), "baseline buffered"
 * (traditional code + 256-op buffer; paper average -34.6%), and
 * "transformed buffered" (aggressive code + 256-op buffer; paper
 * average -72.3%). Per-access energies come from the CACTI-calibrated
 * model (41.8x memory/buffer ratio at 256 ops / 512 KB, §7.2).
 *
 * Usage: bench_fig8b_power [--json[=PATH]] [--history[=PATH]]
 *                          [--loops] [--pmu]
 *   --json[=P]     machine-readable results (default
 *                  BENCH_fig8b.json); energies are deterministic, so
 *                  the dump is diffable counter-exact by the
 *                  regression gate
 *   --history[=P]  also append the flattened document to the
 *                  BENCH_history.jsonl timeline (implies --json)
 *   --loops        per-loop scorecard for every workload
 *                  (aggressive, 256-op buffer) after the table
 *   --pmu          attribute host hardware counters (IPC,
 *                  branch/cache misses) to the profiler's regions
 *                  over the whole run; host-variant, so the "pmu"
 *                  JSON block is recorded but never gated
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "support/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main(int argc, char **argv)
{
    BenchOptions o;
    if (!parseBenchOptions(argc, argv,
                           kBenchFlagJson | kBenchFlagHistory |
                               kBenchFlagLoops | kBenchFlagPmu,
                           "BENCH_fig8b.json", o))
        return 2;
    startBenchPmu(o);

    std::printf("=== Figure 8b: normalized instruction fetch power "
                "===\n\n");
    const CactiLite model;
    std::printf("CACTI-lite calibration: memory/buffer per-access "
                "ratio = %.1fx (paper: 41.8x)\n\n",
                model.calibratedRatio());

    std::printf("%-12s %12s %14s %16s\n", "benchmark", "unbuffered",
                "base-buffered", "transformed");
    rule();

    struct Row
    {
        std::string name;
        double baseBuffered = 0;
        double transformed = 0;
    };
    std::vector<Row> rows;
    double sumBase = 0, sumTrans = 0;
    int n = 0;
    obs::CycleRow cycles{}; // transformed-buffered runs, summed
    for (const auto &name : benchNames()) {
        auto &trad = compileBench(name, OptLevel::Traditional);
        auto &aggr = compileBench(name, OptLevel::Aggressive);
        const SimStats st = simulate(trad, 256);
        obs::CycleStack cs;
        const SimStats sa = simulate(aggr, 256, PredMode::SLOT,
                                     SimEngine::DECODED, nullptr, &cs);
        const obs::CycleRow row = cs.totals();
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
            cycles[k] += row[k];

        const double unbuffered =
            unbufferedEnergyNj(st.opsFetched, model);
        const double baseBuffered =
            computeFetchEnergy(st, 256, model).totalNj;
        const double transformed =
            computeFetchEnergy(sa, 256, model).totalNj;

        const double b = baseBuffered / unbuffered;
        const double t = transformed / unbuffered;
        std::printf("%-12s %12.3f %14.3f %16.3f\n", name.c_str(), 1.0,
                    b, t);
        rows.push_back({name, b, t});
        sumBase += b;
        sumTrans += t;
        ++n;
    }
    rule();
    const double avgBase = sumBase / n;
    const double avgTrans = sumTrans / n;
    std::printf("\naverage baseline-buffered reduction:    %s "
                "(paper: 34.6%%)\n", pct(1.0 - avgBase).c_str());
    std::printf("average transformed-buffered reduction: %s "
                "(paper: 72.3%%)\n", pct(1.0 - avgTrans).c_str());

    if (o.loops) {
        std::printf("\n=== Per-loop scorecards (aggressive, 256-op "
                    "buffer) ===\n\n");
        dumpLoopScorecards(OptLevel::Aggressive, 256);
    }
    if (!o.json && o.pmu)
        finishBenchPmu(o); // table only — no document to carry it
    if (o.json) {
        using obs::Json;
        Json doc = benchJsonDoc("fig8b");

        Json config = Json::object();
        config.set("bufferOps", Json::integer(256));
        config.set("memoryBufferRatio",
                   Json::number(model.calibratedRatio()));
        doc.set("config", std::move(config));

        Json pts = Json::array();
        for (const auto &r : rows) {
            Json row = Json::object();
            row.set("workload", Json::str(r.name));
            row.set("baseBuffered", Json::number(r.baseBuffered));
            row.set("transformed", Json::number(r.transformed));
            pts.push(std::move(row));
        }
        doc.set("points", std::move(pts));

        Json avg = Json::object();
        avg.set("baseBuffered", Json::number(avgBase));
        avg.set("transformed", Json::number(avgTrans));
        doc.set("average", std::move(avg));

        // Closed cycle accounting of the transformed-buffered runs
        // (aggressive, 256-op buffer), summed over every workload.
        doc.set("cycle_stack", cycleStackJson(cycles));

        // Host-variant counters (PerPoint: recorded, never gated).
        doc.set("pmu", finishBenchPmu(o));

        writeBenchJson(o.jsonPath, doc);
        if (!o.historyPath.empty())
            appendBenchHistory(o.historyPath, doc);
    }
    return 0;
}
