# Empty dependencies file for bench_fig5_postfilter.
# This may be replaced when dependencies are built.
