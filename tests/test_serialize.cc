/**
 * @file
 * Textual serialization tests: write/parse round-trips over
 * hand-written programs, every Table-1 workload (structural and
 * semantic equality), transformed/predicated code, and parser error
 * handling.
 */

#include <gtest/gtest.h>

#include "ir/interpreter.hh"
#include "ir/serialize.hh"
#include "ir/verifier.hh"
#include "workloads/registry.hh"
#include "core/compiler.hh"

namespace lbp
{
namespace
{

TEST(Serialize, HandWrittenKernelParses)
{
    const std::string text = R"(
program tiny
memory 64
checksum 0 8
entry main

func main params() rets 1
  block entry entry
    mov r1 = 0
    mov r2 = 5
    falls loop
  block loop
    add r1 = r1, r2
    add r2 = r2, -1
    br.gt r2, 0 -> loop
    falls done
  block done
    mov r3 = 0
    st.w r3, 0, r1
    ret r1
)";
    Program prog = parseText(text);
    verifyOrDie(prog);
    Interpreter interp(prog);
    const auto r = interp.run();
    EXPECT_EQ(r.returns[0], 5 + 4 + 3 + 2 + 1);
}

TEST(Serialize, PredicatedOpsRoundTrip)
{
    const std::string text = R"(
program pred
memory 16
entry main
func main params() rets 1
  block entry entry
    mov r1 = 7
    pred_def.lt p1:ut, p2:uf = r1, 10
    (p1) add r2 = r1, 100 spec
    (p2) add r2 = r1, 200
    ret r2
)";
    Program prog = parseText(text);
    Interpreter interp(prog);
    EXPECT_EQ(interp.run().returns[0], 107);

    // Round-trip: parse(write(parse(text))) behaves identically.
    Program prog2 = parseText(writeText(prog));
    Interpreter interp2(prog2);
    EXPECT_EQ(interp2.run().returns[0], 107);
    // The speculative flag survived.
    bool sawSpec = false;
    for (const auto &bb : prog2.functions[0].blocks)
        for (const auto &op : bb.ops)
            sawSpec |= op.speculative;
    EXPECT_TRUE(sawSpec);
}

TEST(Serialize, BufferOpsRoundTrip)
{
    const std::string text = R"(
program buf
memory 16
entry main
func main params() rets 1
  block entry entry
    mov r1 = 0
    rec_cloop 6 -> body buf 32 n 3
    falls body
  block body
    add r1 = r1, 2
    br.cloop -> body
    falls done
  block done
    ret r1
)";
    Program prog = parseText(text);
    Interpreter interp(prog);
    EXPECT_EQ(interp.run().returns[0], 12);
    Program prog2 = parseText(writeText(prog));
    // bufAddr/numOps survive the round trip.
    bool found = false;
    for (const auto &op :
         prog2.functions[0].blocks[prog2.functions[0].entry].ops) {
        if (op.op == Opcode::REC_CLOOP) {
            EXPECT_EQ(op.bufAddr, 32);
            EXPECT_EQ(op.numOps, 3);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

class WorkloadRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRoundTrip, TextPreservesSemantics)
{
    Program prog = workloads::buildWorkload(GetParam());
    Interpreter ref(prog);
    const auto golden = ref.run();

    const std::string text = writeText(prog);
    Program back = parseText(text);
    verifyOrDie(back);
    Interpreter interp(back);
    const auto r = interp.run();
    EXPECT_EQ(r.checksum, golden.checksum);
    EXPECT_EQ(r.returns, golden.returns);
    EXPECT_EQ(r.dynOps, golden.dynOps);

    // Canonical: writing the reparsed program reproduces the text.
    EXPECT_EQ(writeText(back), text);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, WorkloadRoundTrip,
    ::testing::Values("adpcm_enc", "g724_dec", "jpeg_enc", "mpeg2_dec",
                      "mpg123", "pgp_enc"));

TEST(Serialize, TransformedProgramRoundTrips)
{
    // The aggressive pipeline's output (hyperblocks, predicates,
    // rec/cloop ops, side exits) must serialize too.
    Program prog = workloads::buildWorkload("adpcm_enc");
    CompileOptions opts;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    const std::string text = writeText(cr.ir);
    Program back = parseText(text);
    VerifyOptions vo;
    vo.allowInternalBranches = true;
    verifyOrDie(back, vo);
    Interpreter interp(back);
    EXPECT_EQ(interp.run().checksum, cr.goldenChecksum);
}

TEST(Serialize, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(parseText("program x\nmemory nope\n"),
                 std::runtime_error);
    EXPECT_THROW(parseText("program x\nbogus_keyword y\n"),
                 std::runtime_error);
    // Wrong operand arity parses (the verifier owns that check):
    Program lax = parseText("program x\nmemory 8\nfunc f params(r1) "
                            "rets 0\n  block b entry\n    add r1 = "
                            "r2\n    ret\n");
    EXPECT_FALSE(verify(lax.functions[0]).empty());
}

TEST(Serialize, UnknownTargetRejected)
{
    EXPECT_THROW(parseText(R"(
program x
memory 8
entry main
func main params() rets 0
  block entry entry
    br.eq 0, 0 -> nowhere
    falls entry
)"),
                 std::runtime_error);
}

} // namespace
} // namespace lbp
