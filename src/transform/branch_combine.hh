/**
 * @file
 * Branch combining (paper §3): in a hyperblock loop body with several
 * rarely-taken predicated side exits, a "summary predicate" is
 * computed with or-type defines wherever any exit predicate is set;
 * the individual exits are replaced by a single summary jump to a
 * "decode block" that discerns the originally-desired direction by
 * testing the preserved exit predicates.
 */

#ifndef LBP_TRANSFORM_BRANCH_COMBINE_HH
#define LBP_TRANSFORM_BRANCH_COMBINE_HH

#include "ir/program.hh"

namespace lbp
{

namespace obs
{
class LoopDecisionLog;
}

struct BranchCombineOptions
{
    /** Combine only when at least this many side exits qualify. */
    int minExits = 2;
};

struct BranchCombineStats
{
    int loopsCombined = 0;
    int exitsCombined = 0;
};

/**
 * Combine side exits in eligible hyperblock loops of @p fn. When
 * @p log is given, each candidate loop gets a "branch_combine"
 * LoopAttempt recording the number of exits folded (or why none were).
 */
BranchCombineStats combineBranches(Function &fn,
                                   const BranchCombineOptions &opts = {},
                                   obs::LoopDecisionLog *log = nullptr);

/** Program-wide driver. */
BranchCombineStats combineBranches(Program &prog,
                                   const BranchCombineOptions &opts = {},
                                   obs::LoopDecisionLog *log = nullptr);

} // namespace lbp

#endif // LBP_TRANSFORM_BRANCH_COMBINE_HH
