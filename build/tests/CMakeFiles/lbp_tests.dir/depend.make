# Empty dependencies file for lbp_tests.
# This may be replaced when dependencies are built.
