#include "transform/unroll.hh"

#include "analysis/loop_info.hh"
#include "support/logging.hh"

namespace lbp
{

bool
unrollLoop(Function &fn, BlockId header, int factor)
{
    LBP_ASSERT(factor >= 2, "unroll factor must be >= 2");
    LoopInfo li(fn);
    const Loop *loop = nullptr;
    for (const auto &l : li.loops()) {
        if (l.header == header) {
            loop = &l;
            break;
        }
    }
    if (!loop || !li.isSimple(loop->index))
        return false;
    if (!loop->induction.valid || loop->induction.constTrip < factor)
        return false;
    if (loop->induction.constTrip % factor != 0)
        return false;

    BasicBlock &bb = fn.blocks[header];
    Operation *term = bb.terminator();
    if (!term || term->op != Opcode::BR || term->target != header ||
        term->hasGuard()) {
        return false;
    }

    // Body copies: [body-minus-branch] x factor, then the branch.
    // Registers are not renamed; copies execute back to back exactly
    // like the original iterations (the induction update is part of
    // the body, so indexing stays correct).
    std::vector<Operation> body(bb.ops.begin(), bb.ops.end() - 1);
    Operation back = bb.ops.back();

    std::vector<Operation> out;
    for (int k = 0; k < factor; ++k) {
        for (const auto &op : body) {
            Operation copy = op;
            if (k > 0)
                copy.id = fn.newOpId();
            out.push_back(std::move(copy));
        }
    }
    out.push_back(std::move(back));
    bb.ops = std::move(out);
    return true;
}

UnrollStats
unrollSmallLoops(Function &fn, int factor, int maxBodyOps)
{
    UnrollStats st;
    // Collect headers first; unrolling preserves block structure so
    // no recomputation is required between loops.
    LoopInfo li(fn);
    std::vector<BlockId> headers;
    for (const auto &l : li.loops()) {
        if (li.isSimple(l.index) &&
            fn.blocks[l.header].sizeOps() <= maxBodyOps) {
            headers.push_back(l.header);
        }
    }
    for (BlockId h : headers) {
        const int before = fn.blocks[h].sizeOps();
        if (unrollLoop(fn, h, factor)) {
            ++st.loopsUnrolled;
            st.opsAdded += fn.blocks[h].sizeOps() - before;
        }
    }
    return st;
}

} // namespace lbp
