/**
 * @file
 * Classic-optimization tests: constant folding, algebraic
 * simplification, copy propagation, dead-code elimination, and
 * semantic preservation on random programs.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "support/random.hh"
#include "transform/classic_opts.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

TEST(ClassicOpts, FoldsConstants)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId x = b.add(I(3), I(4));
    const RegId y = b.mul(R(x), I(2));
    b.ret({R(y)});
    auto st = optimizeFunction(prog.functions[f]);
    EXPECT_GT(st.folded + st.propagated, 0);
    Interpreter interp(prog);
    EXPECT_EQ(interp.run().returns[0], 14);
    // After folding+propagation, the ret source is the constant.
    const auto &ops =
        prog.functions[f].blocks[prog.functions[f].entry].ops;
    EXPECT_TRUE(ops.back().srcs[0].isImm());
    EXPECT_EQ(ops.back().srcs[0].value, 14);
}

TEST(ClassicOpts, AlgebraicIdentities)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    Function &fn = prog.functions[f];
    const RegId p = fn.newReg();
    fn.params = {p};
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId a = b.add(R(p), I(0));
    const RegId m = b.mul(R(a), I(1));
    const RegId s = b.shl(R(m), I(0));
    b.ret({R(s)});
    optimizeFunction(fn);
    // Everything simplifies to ret p.
    const auto &ops = fn.blocks[fn.entry].ops;
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].op, Opcode::RET);
    EXPECT_EQ(ops[0].srcs[0].asReg(), p);
}

TEST(ClassicOpts, DivByZeroNotFolded)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId d = b.div(I(10), I(0)); // would trap; must stay
    b.ret({R(d)});
    auto st = constantFold(prog.functions[f]);
    EXPECT_EQ(st.folded, 0);
}

TEST(ClassicOpts, DeadCodeRemoved)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    b.iconst(111); // dead
    b.iconst(222); // dead
    const RegId live = b.iconst(7);
    b.ret({R(live)});
    auto st = deadCodeElim(prog.functions[f]);
    EXPECT_EQ(st.eliminated, 2);
    Interpreter interp(prog);
    EXPECT_EQ(interp.run().returns[0], 7);
}

TEST(ClassicOpts, StoresNeverRemoved)
{
    Program prog;
    prog.allocData(16);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    b.storeW(R(p), I(0), I(5));
    b.ret({});
    auto st = deadCodeElim(prog.functions[f]);
    EXPECT_EQ(st.eliminated, 0);
}

TEST(ClassicOpts, GuardedWriteDoesNotKill)
{
    // A guarded MOV must not be treated as killing the old value:
    // DCE may not delete the unguarded def feeding around it.
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId x = b.iconst(10);
    const PredId p = b.newPred();
    b.predDef(PredDefKind::UT, p, CmpCond::FALSE_, I(0), I(0));
    Operation g = makeUnary(Opcode::MOV, x, I(99));
    g.guard = p;
    b.emit(g);
    b.ret({R(x)});
    optimizeFunction(prog.functions[f]);
    Interpreter interp(prog);
    EXPECT_EQ(interp.run().returns[0], 10);
}

TEST(ClassicOpts, DeadPredDefRemoved)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const PredId p = b.newPred();
    b.predDef(PredDefKind::UT, p, CmpCond::TRUE_, I(0), I(0));
    b.ret({I(0)});
    auto st = deadCodeElim(prog.functions[f]);
    EXPECT_EQ(st.eliminated, 1);
}

/** Property: optimization preserves semantics on random programs. */
TEST(ClassicOpts, RandomProgramEquivalence)
{
    Rng rng(2024);
    for (int trial = 0; trial < 30; ++trial) {
        Program prog;
        const auto mem = prog.allocData(256);
        prog.checksumBase = mem;
        prog.checksumSize = 256;
        const FuncId f = prog.newFunction("main");
        prog.entryFunc = f;
        IRBuilder b(prog, f);
        std::vector<RegId> pool;
        for (int i = 0; i < 4; ++i)
            pool.push_back(b.iconst(rng.nextRange(-50, 50)));
        const int n = 5 + static_cast<int>(rng.nextBelow(25));
        for (int i = 0; i < n; ++i) {
            const RegId a = pool[rng.nextBelow(pool.size())];
            const Operand src2 =
                rng.chance(0.5)
                    ? Operand::reg(pool[rng.nextBelow(pool.size())])
                    : Operand::imm(rng.nextRange(-9, 9));
            const Opcode ops[] = {Opcode::ADD, Opcode::SUB,
                                  Opcode::MUL, Opcode::AND,
                                  Opcode::OR, Opcode::XOR,
                                  Opcode::MIN, Opcode::MAX};
            const Opcode oc = ops[rng.nextBelow(8)];
            pool.push_back(b.add(Operand::reg(a), src2));
            pool.back() = pool.back(); // keep result in the pool
            // Replace the op we just built with the random opcode.
            auto &blk =
                prog.functions[f].blocks[b.current()];
            blk.ops.back().op = oc;
        }
        // Store a couple of results so they're observable.
        const RegId base = b.iconst(0);
        b.storeW(Operand::reg(base), Operand::imm(0),
                 Operand::reg(pool.back()));
        b.storeW(Operand::reg(base), Operand::imm(4),
                 Operand::reg(pool[pool.size() / 2]));
        b.ret({});

        Interpreter pre(prog);
        const auto before = pre.run();
        optimizeProgram(prog);
        Interpreter post(prog);
        const auto after = post.run();
        EXPECT_EQ(before.checksum, after.checksum)
            << "trial " << trial;
        EXPECT_LE(after.dynOps, before.dynOps);
    }
}

} // namespace
} // namespace lbp
