/**
 * @file
 * Engine differential: the decoded fast-path executor must be
 * behaviorally indistinguishable from the reference interpreter —
 * every field of SimStats, including the per-loop counter vectors —
 * for every registry workload, under both predication
 * micro-architectures, at several buffer sizes.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "obs/cycle_stack.hh"
#include "obs/publish.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

/**
 * Compare via the registry diff: on mismatch the failure message is a
 * field-by-field listing of every diverging metric (including per-loop
 * counters) plus the first diverging loop id — not just "stats
 * differ".
 */
void
expectIdentical(const SimStats &ref, const SimStats &dec,
                const std::string &what)
{
    const std::string diff = obs::diffSimStats(ref, dec);
    EXPECT_TRUE(diff.empty()) << what << "\n" << diff;

    // Belt and braces on top of the registry diff: the per-loop
    // records must be element-wise equal through LoopStats::operator==
    // (which covers every field, so a field added to LoopStats but
    // forgotten in publishLoopStats still fails here).
    ASSERT_EQ(ref.loops.size(), dec.loops.size()) << what;
    for (std::size_t i = 0; i < ref.loops.size(); ++i)
        EXPECT_TRUE(ref.loops[i] == dec.loops[i])
            << what << " loop[" << i << "] (" << ref.loops[i].name
            << ") diverges between engines";
}

/**
 * The attribution invariant both engines maintain by construction:
 * every op the sim counts in SimStats::opsFromBuffer is attributed to
 * exactly one loop, so the per-loop column sums back to the aggregate.
 */
void
expectLoopAttributionExact(const SimStats &st, const std::string &what)
{
    std::uint64_t fromBuffer = 0, fromCache = 0;
    for (const auto &ls : st.loops) {
        fromBuffer += ls.opsFromBuffer;
        fromCache += ls.opsFromCache;
    }
    EXPECT_EQ(fromBuffer, st.opsFromBuffer) << what;
    // Cache-side attribution only covers ops fetched inside active
    // loop bodies, so it is bounded by (never equal to, in general)
    // the total cache-issued ops.
    EXPECT_LE(fromBuffer + fromCache, st.opsFetched) << what;
}

/**
 * The cycle-accounting invariant: the side-band CycleStack is closed
 * (sum over classes == SimStats::cycles) and its per-loop rows
 * integrate to the workload stack, class by class.
 */
void
expectCycleStackClosed(const VliwSim &sim, const SimStats &st,
                       const std::string &what)
{
    const obs::CycleStack &cs = sim.cycleStack();
    ASSERT_EQ(cs.numRows(), st.loops.size() + 1) << what;
    EXPECT_EQ(cs.totalCycles(), st.cycles)
        << what << ": cycle stack is not closed";
    const obs::CycleRow totals = cs.totals();
    obs::CycleRow integral{};
    for (std::size_t i = 0; i < cs.numRows(); ++i) {
        const obs::CycleRow &row = cs.row(static_cast<int>(i) - 1);
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
            integral[k] += row[k];
    }
    for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
        EXPECT_EQ(integral[k], totals[k])
            << what << ": per-loop rows do not integrate for class "
            << obs::cycleClassName(static_cast<obs::CycleClass>(k));
}

/**
 * Replay is a decoded-engine-only refinement of buffer issue; folding
 * it back (collapseReplay) must make the stacks of two engine
 * configurations identical, row by row and class by class.
 */
void
expectCollapsedStacksEqual(const VliwSim &a, const VliwSim &b,
                           const std::string &what)
{
    const obs::CycleStack &ca = a.cycleStack();
    const obs::CycleStack &cb = b.cycleStack();
    ASSERT_EQ(ca.numRows(), cb.numRows()) << what;
    for (std::size_t i = 0; i < ca.numRows(); ++i) {
        const obs::CycleRow ra = obs::CycleStack::collapseReplay(
            ca.row(static_cast<int>(i) - 1));
        const obs::CycleRow rb = obs::CycleStack::collapseReplay(
            cb.row(static_cast<int>(i) - 1));
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
            EXPECT_EQ(ra[k], rb[k])
                << what << ": collapsed stacks diverge at row " << i
                << " class "
                << obs::cycleClassName(
                       static_cast<obs::CycleClass>(k));
    }
}

class EngineDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineDifferential, DecodedMatchesReference)
{
    Program prog = workloads::buildWorkload(GetParam());

    for (OptLevel lvl : {OptLevel::Traditional, OptLevel::Aggressive}) {
        for (PredMode mode : {PredMode::REGISTER, PredMode::SLOT}) {
            // REGISTER-mode simulation needs slot lowering off (the
            // two predication micro-architectures are exclusive).
            CompileOptions opts;
            opts.level = lvl;
            opts.slotLowering = mode == PredMode::SLOT;
            CompileResult cr;
            compileProgram(prog, opts, cr);
            for (int size : {32, 256, 1024}) {
                reallocateBuffers(cr, size);
                SimConfig sc;
                sc.bufferOps = size;
                sc.predMode = mode;
                sc.engine = SimEngine::REFERENCE;
                VliwSim refSim(cr.code, sc);
                const SimStats ref = refSim.run();
                // Decoded engine three ways: trace cache
                // force-enabled (predicated replay on), enabled with
                // predicated replay forced off (fast tier only), and
                // force-disabled — so the predicated replay path,
                // the strict fast tier, and the general path are all
                // pinned to the reference regardless of the
                // LBP_SIM_NO_TRACE_CACHE / LBP_SIM_NO_PRED_REPLAY
                // defaults.
                sc.engine = SimEngine::DECODED;
                sc.traceCache = TraceCacheMode::On;
                sc.predReplay = PredReplayMode::On;
                VliwSim decSim(cr.code, sc);
                const SimStats dec = decSim.run();
                sc.predReplay = PredReplayMode::Off;
                VliwSim decStrictSim(cr.code, sc);
                const SimStats decStrict = decStrictSim.run();
                sc.predReplay = PredReplayMode::On;
                sc.traceCache = TraceCacheMode::Off;
                VliwSim decOffSim(cr.code, sc);
                const SimStats decOff = decOffSim.run();
                EXPECT_EQ(ref.checksum, cr.goldenChecksum);
                expectLoopAttributionExact(
                    ref, GetParam() + " reference engine size=" +
                             std::to_string(size));
                expectLoopAttributionExact(
                    dec, GetParam() + " decoded engine size=" +
                             std::to_string(size));
                const std::string what =
                    GetParam() + " level=" +
                    (lvl == OptLevel::Aggressive ? "aggr"
                                                 : "trad") +
                    " mode=" +
                    (mode == PredMode::SLOT ? "slot" : "reg") +
                    " size=" + std::to_string(size);
                expectIdentical(ref, dec, what + " cache=on");
                expectIdentical(ref, decStrict,
                                what + " pred-replay=off");
                expectIdentical(ref, decOff, what + " cache=off");
                expectCycleStackClosed(refSim, ref,
                                       what + " reference");
                expectCycleStackClosed(decSim, dec,
                                       what + " cache=on");
                expectCycleStackClosed(decStrictSim, decStrict,
                                       what + " pred-replay=off");
                expectCycleStackClosed(decOffSim, decOff,
                                       what + " cache=off");
                expectCollapsedStacksEqual(refSim, decSim,
                                           what + " ref vs on");
                expectCollapsedStacksEqual(refSim, decStrictSim,
                                           what +
                                               " ref vs strict");
                expectCollapsedStacksEqual(refSim, decOffSim,
                                           what + " ref vs off");
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineDifferential,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace lbp
