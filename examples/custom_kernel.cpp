/**
 * @file
 * Library-as-a-toolkit example: hand-assemble a pre-predicated loop
 * using the full Table-2 define vocabulary (the way a compiler
 * backend or a hand-tuner would target the slot-predication
 * hardware), schedule it, lower it to slot predication, and inspect
 * the machine-level result — bundle by bundle — under both
 * predication micro-architectures.
 */

#include <cstdio>
#include <iostream>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "sim/vliw_sim.hh"

using namespace lbp;

namespace
{

/**
 * A complex-magnitude-ish kernel with a compound condition:
 *   for each pair (re, im):
 *     m = |re| + |im|;
 *     if (m > hi || m < lo) clipped++ and m is clamped;
 *     out[i] = m;
 * The compound condition is expressed directly with or-type defines.
 */
Program
buildKernel()
{
    Program prog;
    prog.name = "custom_kernel";
    const int n = 512;
    const std::int64_t in = prog.allocData(n * 2 * 2);
    const std::int64_t out = prog.allocData(n * 2);
    prog.checksumBase = out;
    prog.checksumSize = n * 2;
    for (int i = 0; i < n * 2; ++i) {
        prog.poke16(in + 2 * i,
                    static_cast<std::int16_t>((i * 3571) % 4001 - 2000));
    }

    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId inP = b.iconst(in);
    const RegId outP = b.iconst(out);
    const RegId clipped = b.iconst(0);
    const PredId pClip = b.newPred();

    b.forLoop(0, n, 1, [&](RegId i) {
        const RegId off = b.shl(R(i), I(2));
        const RegId re = b.loadH(R(inP), R(off));
        const RegId im = b.loadH(R(inP), R(b.add(R(off), I(2))));
        const RegId mre = b.abs(R(re));
        const RegId mim = b.abs(R(im));
        const RegId m = b.add(R(mre), R(mim));

        // pClip = (m > 1800) || (m < 64), built from or-type defines
        // exactly as Table 2 intends.
        b.predDef(PredDefKind::UT, pClip, CmpCond::GT, R(m), I(1800));
        b.predDef(PredDefKind::OT, pClip, CmpCond::LT, R(m), I(64));

        Operation bump = makeBinary(Opcode::ADD, clipped, R(clipped),
                                    I(1));
        bump.guard = pClip;
        b.emit(bump);
        Operation clamp = makeBinary(Opcode::MIN, m, R(m), I(1800));
        clamp.guard = pClip;
        b.emit(clamp);

        const RegId o2 = b.shl(R(i), I(1));
        b.storeH(R(outP), R(o2), R(m));
    });
    b.ret({R(clipped)});
    return prog;
}

void
dumpSchedule(const CompileResult &cr)
{
    const Function &fn = cr.ir.functions[cr.ir.entryFunc];
    for (const auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        const SchedBlock &sb = cr.code.functions[fn.id].blocks[bb.id];
        if (!sb.valid || !sb.isLoopBody)
            continue;
        std::printf("loop body '%s': %d cycles, II=%d, MVE=%d, "
                    "image=%d ops\n", bb.name.c_str(),
                    sb.lengthCycles(), sb.ii, sb.mveFactor,
                    sb.imageOps());
        for (size_t cy = 0; cy < sb.bundles.size(); ++cy) {
            std::printf("  cycle %2zu:", cy);
            for (const auto &so : sb.bundles[cy].ops) {
                std::printf(" [s%d] %s;", so.slot,
                            toString(so.op, &fn).c_str());
            }
            std::printf("\n");
        }
    }
}

} // namespace

int
main()
{
    Program prog = buildKernel();

    // Each predication micro-architecture gets a matching compilation
    // (slot-routed defines bypass the predicate register file, so
    // REGISTER-mode hardware runs the unlowered build).
    CompileOptions slotOpts;
    slotOpts.level = OptLevel::Aggressive;
    CompileResult crSlot;
    compileProgram(prog, slotOpts, crSlot);

    CompileOptions regOpts;
    regOpts.level = OptLevel::Aggressive;
    regOpts.slotLowering = false;
    CompileResult crReg;
    compileProgram(prog, regOpts, crReg);

    std::printf("=== Scheduled, slot-lowered kernel ===\n");
    dumpSchedule(crSlot);
    std::printf("\nslot lowering: %d blocks lowered, %d defines "
                "rewritten, %d cloned\n",
                crSlot.slotStats.blocksLowered,
                crSlot.slotStats.definesRewritten,
                crSlot.slotStats.definesCloned);

    for (PredMode mode : {PredMode::REGISTER, PredMode::SLOT}) {
        const bool slot = mode == PredMode::SLOT;
        CompileResult &cr = slot ? crSlot : crReg;
        SimConfig sc;
        sc.bufferOps = 256;
        sc.predMode = mode;
        VliwSim sim(cr.code, sc);
        const SimStats st = sim.run();
        std::printf("%-20s: %llu cycles, %llu sensitive ops, "
                    "checksum %s (clipped=%lld)\n",
                    slot ? "slot predication" : "register predication",
                    (unsigned long long)st.cycles,
                    (unsigned long long)st.opsSensitive,
                    st.checksum == cr.goldenChecksum ? "OK" : "BAD",
                    st.returns.empty()
                        ? -1
                        : (long long)st.returns[0]);
    }
    return 0;
}
