/**
 * @file
 * Build identity for every emitted observability document. The git
 * SHA is captured at CMake configure time (`git describe --always
 * --dirty`) and compiled into exactly one translation unit; each
 * emitter stamps it into its JSON so a record in BENCH_history.jsonl
 * or a generated report is traceable to the commit that produced it.
 *
 * The schema version constants for every document family live here
 * too, so `lbp_stats --version` can print the full contract in one
 * place:
 *
 *   registry dump    obs::kRegistrySchemaVersion (registry.hh)
 *   bench document   kBenchSchemaVersion (bench_common's
 *                    benchJsonDoc layout)
 *   history record   kHistorySchemaVersion (history.hh's jsonl line)
 */

#ifndef LBP_OBS_VERSION_HH
#define LBP_OBS_VERSION_HH

#include <string>

namespace lbp
{
namespace obs
{

class Json;

/** benchJsonDoc layout version. History:
 *    1  ad-hoc fprintf layouts, one per bench
 *    2  shared obs::Json emitter; adds "machine" and "config"
 *    3  adds the "git_sha" build-identity stamp
 *    4  adds the "cycle_stack" closed cycle-accounting block
 *    5  adds the "pmu" host-counter block (PerPoint: recorded,
 *       never gated) and the "build.pmu" config bool
 *    6  sim_fastpath: adds trace_cache.pred_replay.* counters, the
 *       trace_cache.per_workload.* coverage split (PerPoint), and
 *       the nestedLoop/multiBackedge bailout reasons
 */
constexpr int kBenchSchemaVersion = 6;

/** BENCH_history.jsonl record layout version (see history.hh). */
constexpr int kHistorySchemaVersion = 1;

/**
 * Abbreviated git SHA of the checkout this binary was configured
 * from, with a "-dirty" suffix for uncommitted changes; "unknown"
 * when built outside a git work tree. Configure-time, so a rebuild
 * without re-running CMake can lag the head commit.
 */
const char *gitSha();

/** One-line identity: sha + every schema version. */
std::string versionString();

/** Set the "git_sha" key on a JSON document (diffs treat it as
 *  identity, like the "machine" block, never as data). */
void stampVersion(Json &doc);

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_VERSION_HH
