/**
 * @file
 * PGP-style codec pair: an IDEA-like 64-bit block cipher in CFB
 * chaining. The cipher round function carries the classic
 * multiply-modulo-65537 hammocks (special-casing zero operands), so
 * the per-block loop is large and branchy; after inlining and
 * if-conversion the whole CFB loop becomes one big hyperblock that
 * only fits the buffer at the 256-op point — giving pgp the sharp
 * 128 -> 256 jump in the Figure-7 sweep. A cold key-schedule loop
 * runs once at startup.
 */

#include "workloads/workloads.hh"

#include "workloads/input_data.hh"

namespace lbp
{
namespace workloads
{

namespace
{

constexpr int kBlocks = 384;      // 8-byte blocks processed
constexpr int kRounds = 2;        // cipher rounds (scaled for inlining)

struct PgpMem
{
    std::int64_t key;       // 32-bit subkeys
    std::int64_t plain;     // input bytes
    std::int64_t cipher;    // output bytes
    std::int64_t decoded;   // round-trip check
};

PgpMem
layoutPgp(Program &prog)
{
    PgpMem m;
    m.key = prog.allocData(64 * 4);
    m.plain = prog.allocData(kBlocks * 8);
    m.cipher = prog.allocData(kBlocks * 8);
    m.decoded = prog.allocData(kBlocks * 8);
    fillBytes(prog, m.plain, kBlocks * 8, 0x9f2c);
    fillBytes(prog, m.cipher, kBlocks * 8, 0xc1f3);
    fillWords(prog, m.key, 64, 1, 65535, 0xdead1);
    return m;
}

/**
 * Emit mul-mod-65537 into `dst`: the IDEA multiplication with its
 * zero-operand special case folded into one hammock via a compound
 * condition (an or-type predicate after if-conversion).
 */
void
emitMulMod(IRBuilder &b, RegId dst, Operand x, Operand y)
{
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId xv = b.mov(x);
    const RegId yv = b.mov(y);
    // Zero operands act as 2^16.
    const RegId zx = b.cmp(CmpCond::EQ, R(xv), I(0));
    const RegId zy = b.cmp(CmpCond::EQ, R(yv), I(0));
    const RegId anyz = b.or_(R(zx), R(zy));
    diamond(b, CmpCond::NE, R(anyz), I(0),
            [&] {
                const RegId s = b.add(R(xv), R(yv));
                const RegId t = b.sub(I(65537), R(s));
                b.binTo(Opcode::AND, dst, R(t), I(0xffff));
            },
            [&] {
                const RegId p = b.mul(R(xv), R(yv));
                const RegId r = b.rem(R(p), I(65537));
                b.binTo(Opcode::AND, dst, R(r), I(0xffff));
            });
}

/** The per-block cipher: rounds of mul/add/xor mixing. */
FuncId
buildCipherBlock(Program &prog, const PgpMem &m)
{
    const FuncId f = prog.newFunction("idea_block");
    Function &fn = prog.functions[f];
    const RegId w0 = fn.newReg();
    const RegId w1 = fn.newReg();
    const RegId w2 = fn.newReg();
    const RegId w3 = fn.newReg();
    fn.params = {w0, w1, w2, w3};
    fn.numReturns = 2;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId keyP = b.iconst(m.key);
    const RegId t0 = b.iconst(0);
    const RegId t1 = b.iconst(0);

    for (int round = 0; round < kRounds; ++round) {
        const int kbase = round * 6;
        auto subkey = [&](int j) {
            return b.loadW(R(keyP), Operand::imm((kbase + j) * 4));
        };
        const RegId k0 = subkey(0);
        const RegId k1 = subkey(1);
        const RegId k2 = subkey(2);
        const RegId k3 = subkey(3);
        emitMulMod(b, t0, R(w0), R(k0));
        b.movTo(w0, R(t0));
        const RegId s1 = b.add(R(w1), R(k1));
        b.binTo(Opcode::AND, w1, R(s1), I(0xffff));
        const RegId s2 = b.add(R(w2), R(k2));
        b.binTo(Opcode::AND, w2, R(s2), I(0xffff));
        emitMulMod(b, t1, R(w3), R(k3));
        b.movTo(w3, R(t1));

        const RegId x02 = b.xor_(R(w0), R(w2));
        const RegId x13 = b.xor_(R(w1), R(w3));
        const RegId k4 = subkey(4);
        const RegId k5 = subkey(5);
        emitMulMod(b, t0, R(x02), R(k4));
        const RegId sum = b.add(R(x13), R(t0));
        const RegId sm = b.and_(R(sum), I(0xffff));
        emitMulMod(b, t1, R(sm), R(k5));
        const RegId u = b.add(R(t0), R(t1));
        const RegId um = b.and_(R(u), I(0xffff));
        b.binTo(Opcode::XOR, w0, R(w0), R(t1));
        b.binTo(Opcode::XOR, w1, R(w1), R(um));
        b.binTo(Opcode::XOR, w2, R(w2), R(t1));
        b.binTo(Opcode::XOR, w3, R(w3), R(um));
    }
    const RegId hi = b.or_(R(b.shl(R(w0), I(16))), R(w1));
    const RegId lo = b.or_(R(b.shl(R(w2), I(16))), R(w3));
    b.ret({R(hi), R(lo)});
    return f;
}

/** Cold key schedule: rotate/mix loop, runs once. */
FuncId
buildKeySchedule(Program &prog, const PgpMem &m)
{
    const FuncId f = prog.newFunction("key_schedule");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId keyP = b.iconst(m.key);
    const RegId acc = b.iconst(0x9e37);

    b.forLoop(0, 64, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId k = b.loadW(R(keyP), R(i4));
        const RegId rot = b.or_(R(b.shl(R(k), I(9))),
                                R(b.shr(R(k), I(7))));
        const RegId mixed = b.xor_(R(rot), R(acc));
        const RegId masked = b.and_(R(mixed), I(0xffff));
        const RegId nz = b.max(R(masked), I(1));
        b.storeW(R(keyP), R(i4), R(nz));
        b.binTo(Opcode::XOR, acc, R(acc), R(nz));
    });
    b.ret({R(acc)});
    return f;
}

/** Radix-64 armoring pass over the ciphertext (runs once). */
FuncId
buildRadix64(Program &prog, const PgpMem &)
{
    const FuncId f = prog.newFunction("radix64");
    Function &fn = prog.functions[f];
    const RegId inP = fn.newReg();
    fn.params = {inP};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId acc = b.iconst(0);
    const RegId crc = b.iconst(0xb704ce);

    b.forLoop(0, kBlocks * 2, 1, [&](RegId i) {
        const RegId i3 = b.mul(R(i), I(3));
        const RegId b0 = b.loadB(R(inP), R(i3));
        const RegId b1 = b.loadB(R(inP), R(b.add(R(i3), I(1))));
        const RegId b2 = b.loadB(R(inP), R(b.add(R(i3), I(2))));
        const RegId w = b.or_(R(b.shl(R(b0), I(16))),
                              R(b.or_(R(b.shl(R(b1), I(8))), R(b2))));
        const RegId c0 = b.and_(R(b.shr(R(w), I(18))), I(63));
        const RegId c1 = b.and_(R(b.shr(R(w), I(12))), I(63));
        const RegId c2 = b.and_(R(b.shr(R(w), I(6))), I(63));
        const RegId c3 = b.and_(R(w), I(63));
        const RegId s01 = b.add(R(c0), R(c1));
        const RegId s23 = b.add(R(c2), R(c3));
        b.binTo(Opcode::SATADD, acc, R(acc), R(b.add(R(s01), R(s23))));
        const RegId x = b.xor_(R(crc), R(w));
        const RegId rot = b.or_(R(b.shl(R(x), I(1))),
                                R(b.shr(R(x), I(23))));
        b.movTo(crc, R(b.and_(R(rot), I(0xffffff))));
    });
    const RegId out = b.xor_(R(acc), R(crc));
    b.ret({R(out)});
    return f;
}

/**
 * MD5-style digest over the key material (cold code, runs once —
 * real PGP carries a large amount of such non-kernel code, which is
 * what the 50%-expansion inlining budget is measured against).
 */
FuncId
buildDigest(Program &prog, const PgpMem &m)
{
    const FuncId f = prog.newFunction("digest");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;
    fn.noInline = true;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId keyP = b.iconst(m.key);
    RegId h0 = b.iconst(0x67452301);
    RegId h1 = b.iconst(0xefcdab89 - (1ll << 32));
    RegId h2 = b.iconst(0x98badcfe - (1ll << 32));
    RegId h3 = b.iconst(0x10325476);

    b.forLoop(0, 16, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId w = b.loadW(R(keyP), R(i4));
        // Four unrolled mixing steps per word (straight-line bulk).
        for (int step = 0; step < 4; ++step) {
            const RegId fmix =
                step % 2 == 0
                    ? b.or_(R(b.and_(R(h1), R(h2))),
                            R(b.and_(R(b.xor_(R(h1), I(-1))), R(h3))))
                    : b.xor_(R(b.xor_(R(h1), R(h2))), R(h3));
            const RegId sum =
                b.add(R(b.add(R(h0), R(fmix))),
                      R(b.add(R(w), I(0x5a827999 + step * 7))));
            const RegId rot = b.or_(R(b.shl(R(sum), I(7 + step))),
                                    R(b.shr(R(b.and_(R(sum),
                                        I(0xffffffff))),
                                            I(25 - step))));
            const RegId nh1 = b.add(R(h1), R(rot));
            h0 = h3;
            h3 = h2;
            h2 = h1;
            h1 = b.mov(R(b.and_(R(nh1), I(0xffffffff))));
        }
    });
    const RegId d01 = b.xor_(R(h0), R(h1));
    const RegId d23 = b.xor_(R(h2), R(h3));
    b.ret({R(b.xor_(R(d01), R(d23)))});
    return f;
}

/** CFB chaining loop: load block, cipher, xor, store. */
FuncId
buildCfb(Program &prog, const PgpMem &, FuncId cipher, bool decode)
{
    const FuncId f =
        prog.newFunction(decode ? "cfb_decode" : "cfb_encode");
    Function &fn = prog.functions[f];
    const RegId inP = fn.newReg();
    const RegId outP = fn.newReg();
    fn.params = {inP, outP};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId ivHi = b.iconst(0x1234);
    const RegId ivLo = b.iconst(0x5678);
    const RegId acc = b.iconst(0);

    b.forLoop(0, kBlocks, 1, [&](RegId blk) {
        const RegId off = b.shl(R(blk), I(3));
        // Split the chained IV into four 16-bit words.
        const RegId a0 = b.and_(R(b.shr(R(ivHi), I(16))), I(0xffff));
        const RegId a1 = b.and_(R(ivHi), I(0xffff));
        const RegId a2 = b.and_(R(b.shr(R(ivLo), I(16))), I(0xffff));
        const RegId a3 = b.and_(R(ivLo), I(0xffff));
        auto ks = b.call(cipher, {R(a0), R(a1), R(a2), R(a3)}, 2);

        // XOR keystream with the input 64-bit block (as 2 words).
        const RegId xHi = b.loadW(R(inP), R(off));
        const RegId off4 = b.add(R(off), I(4));
        const RegId xLo = b.loadW(R(inP), R(off4));
        const RegId cHi = b.xor_(R(xHi), R(ks[0]));
        const RegId cLo = b.xor_(R(xLo), R(ks[1]));
        b.storeW(R(outP), R(off), R(cHi));
        b.storeW(R(outP), R(off4), R(cLo));
        // CFB feedback: ciphertext becomes the next IV.
        if (decode) {
            b.movTo(ivHi, R(xHi));
            b.movTo(ivLo, R(xLo));
        } else {
            b.movTo(ivHi, R(cHi));
            b.movTo(ivLo, R(cLo));
        }
        b.binTo(Opcode::XOR, acc, R(acc), R(cLo));
    });
    b.ret({R(acc)});
    return f;
}

Program
buildPgp(bool encode)
{
    Program prog;
    prog.name = encode ? "pgp_enc" : "pgp_dec";
    PgpMem m = layoutPgp(prog);

    const FuncId keys = buildKeySchedule(prog, m);
    const FuncId cipher = buildCipherBlock(prog, m);
    const FuncId enc = buildCfb(prog, m, cipher, false);
    const FuncId dec = buildCfb(prog, m, cipher, true);
    const FuncId armor = buildRadix64(prog, m);
    const FuncId dig = buildDigest(prog, m);

    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    auto k = b.call(keys, {}, 1);
    auto d = b.call(dig, {}, 1);
    (void)k;
    (void)d;
    if (encode) {
        auto r = b.call(enc, {I(m.plain), I(m.cipher)}, 1);
        auto ra = b.call(armor, {I(m.cipher)}, 1);
        const RegId mix = b.xor_(R(r[0]), R(ra[0]));
        b.ret({R(mix)});
        prog.checksumBase = m.cipher;
        prog.checksumSize = kBlocks * 8;
    } else {
        auto r2 = b.call(dec, {I(m.cipher), I(m.decoded)}, 1);
        auto ra = b.call(armor, {I(m.decoded)}, 1);
        const RegId mix = b.xor_(R(r2[0]), R(ra[0]));
        b.ret({R(mix)});
        prog.checksumBase = m.decoded;
        prog.checksumSize = kBlocks * 8;
    }
    return prog;
}

} // namespace

Program
buildPgpEnc()
{
    return buildPgp(true);
}

Program
buildPgpDec()
{
    return buildPgp(false);
}

} // namespace workloads
} // namespace lbp
