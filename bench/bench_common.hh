/**
 * @file
 * Shared helpers for the figure/table reproduction benches: compile a
 * workload under both configurations, run the simulator across buffer
 * sizes, and format result tables.
 */

#ifndef LBP_BENCH_COMMON_HH
#define LBP_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "core/metrics.hh"
#include "power/fetch_energy.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace bench
{

/** The buffer sizes swept by Figure 7. */
const std::vector<int> &figureBufferSizes();

/** Compile one workload at one level (verifying checksums). */
std::unique_ptr<CompileResult> compileBench(const std::string &name,
                                            OptLevel level);

/** Simulate with a buffer size; checks the checksum. */
SimStats simulate(CompileResult &cr, int bufferOps,
                  PredMode mode = PredMode::SLOT);

/** The Table-1 benchmark names. */
std::vector<std::string> benchNames();

/** Print a horizontal rule. */
void rule(char c = '-', int n = 78);

} // namespace bench
} // namespace lbp

#endif // LBP_BENCH_COMMON_HH
