#include "support/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace lbp
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throw rather than exit(1) so library users (and tests) can catch
    // user-class errors.
    throw std::runtime_error(std::string("fatal: ") + msg + " @ " + file +
                             ":" + std::to_string(line));
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " @ " << file << ":" << line
              << std::endl;
}

} // namespace lbp
