/**
 * @file
 * The loop buffer (paper §5): a small, compiler-managed,
 * addressable-memory-style instruction store. The compiler assigns
 * buffer offsets to loop images; the hardware keeps a residency table
 * mapping the address of each loop's REC operation to its buffered
 * image so that re-recording of an intact loop is skipped.
 */

#ifndef LBP_SIM_LOOP_BUFFER_HH
#define LBP_SIM_LOOP_BUFFER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ir/types.hh"

namespace lbp
{

/** Identity of one bufferable loop: its REC operation. */
struct LoopKey
{
    FuncId func = kNoFunc;
    OpId recOp = 0;

    bool operator<(const LoopKey &o) const
    {
        if (func != o.func)
            return func < o.func;
        return recOp < o.recOp;
    }
    bool operator==(const LoopKey &o) const
    { return func == o.func && recOp == o.recOp; }
};

/** Compiler-managed loop buffer with a hardware residency table. */
class LoopBuffer
{
  public:
    explicit LoopBuffer(int capacityOps);

    int capacity() const { return capacity_; }

    /** Is the loop recorded from @p key still intact? */
    bool isResident(const LoopKey &key) const;

    /**
     * Begin recording @p sizeOps operations at offset @p bufAddr for
     * loop @p key. Any overlapping resident image is invalidated
     * (including a previous image of the same key at another offset).
     * Requires 0 <= bufAddr and bufAddr + sizeOps <= capacity.
     * When @p evictedOut is non-null it is cleared and filled with
     * the keys of *other* loops displaced by this recording (the
     * per-loop eviction attribution both sim engines accumulate).
     */
    void record(const LoopKey &key, int bufAddr, int sizeOps,
                std::vector<LoopKey> *evictedOut = nullptr);

    /** Invalidate everything (e.g. context switch). */
    void clear();

    /** Number of currently resident loops. */
    int residentCount() const
    { return static_cast<int>(resident_.size()); }

    /** Statistics. */
    std::uint64_t recordings() const { return recordings_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t tableHits() const { return tableHits_; }
    void countTableHit() { ++tableHits_; }

  private:
    struct Image
    {
        int addr = 0;
        int size = 0;
    };

    int capacity_;
    std::map<LoopKey, Image> resident_;
    std::uint64_t recordings_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t tableHits_ = 0;
};

} // namespace lbp

#endif // LBP_SIM_LOOP_BUFFER_HH
