#include "analysis/liveness.hh"

namespace lbp
{

std::vector<RegId>
Liveness::uses(const Operation &op)
{
    std::vector<RegId> u;
    for (const auto &s : op.srcs)
        if (s.isReg())
            u.push_back(s.asReg());
    return u;
}

std::vector<RegId>
Liveness::defs(const Operation &op)
{
    std::vector<RegId> d;
    for (const auto &s : op.dsts)
        if (s.isReg())
            d.push_back(s.asReg());
    return d;
}

std::vector<PredId>
Liveness::predUses(const Operation &op)
{
    std::vector<PredId> u;
    if (op.guard != kNoPred)
        u.push_back(op.guard);
    for (const auto &s : op.srcs)
        if (s.isPred())
            u.push_back(s.asPred());
    return u;
}

std::vector<PredId>
Liveness::predDefs(const Operation &op)
{
    std::vector<PredId> d;
    if (op.op != Opcode::PRED_DEF)
        return d;
    for (const auto &s : op.dsts)
        if (s.isPred())
            d.push_back(s.asPred());
    return d;
}

Liveness::Liveness(const Function &fn)
{
    const size_t n = fn.blocks.size();
    liveIn_.assign(n, {});
    liveOut_.assign(n, {});
    predLiveIn_.assign(n, {});
    predLiveOut_.assign(n, {});

    // Per-block gen (upward-exposed uses) and kill (unconditional
    // defs). Guarded definitions are conservative: they do not kill.
    std::vector<std::set<RegId>> gen(n), kill(n);
    std::vector<std::set<PredId>> pgen(n), pkill(n);
    for (const auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        for (const auto &op : bb.ops) {
            for (RegId r : uses(op)) {
                if (!kill[bb.id].count(r))
                    gen[bb.id].insert(r);
            }
            for (PredId p : predUses(op)) {
                if (!pkill[bb.id].count(p))
                    pgen[bb.id].insert(p);
            }
            if (!op.hasGuard()) {
                for (RegId r : defs(op))
                    kill[bb.id].insert(r);
            }
            // Unconditional u-type predicate defines always write.
            if (op.op == Opcode::PRED_DEF && !op.hasGuard()) {
                if (op.defKind0 == PredDefKind::UT ||
                    op.defKind0 == PredDefKind::UF) {
                    if (op.dsts[0].isPred())
                        pkill[bb.id].insert(op.dsts[0].asPred());
                }
                if (op.dsts.size() > 1 &&
                    (op.defKind1 == PredDefKind::UT ||
                     op.defKind1 == PredDefKind::UF)) {
                    if (op.dsts[1].isPred())
                        pkill[bb.id].insert(op.dsts[1].asPred());
                }
            }
        }
    }

    bool changed = true;
    auto rpo = fn.reversePostorder();
    while (changed) {
        changed = false;
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            const BlockId b = *it;
            std::set<RegId> out;
            std::set<PredId> pout;
            for (BlockId s : fn.blocks[b].successors()) {
                out.insert(liveIn_[s].begin(), liveIn_[s].end());
                pout.insert(predLiveIn_[s].begin(), predLiveIn_[s].end());
            }
            std::set<RegId> in = gen[b];
            for (RegId r : out)
                if (!kill[b].count(r))
                    in.insert(r);
            std::set<PredId> pin = pgen[b];
            for (PredId p : pout)
                if (!pkill[b].count(p))
                    pin.insert(p);
            if (out != liveOut_[b] || in != liveIn_[b] ||
                pout != predLiveOut_[b] || pin != predLiveIn_[b]) {
                changed = true;
                liveOut_[b] = std::move(out);
                liveIn_[b] = std::move(in);
                predLiveOut_[b] = std::move(pout);
                predLiveIn_[b] = std::move(pin);
            }
        }
    }
}

} // namespace lbp
