/**
 * @file
 * Trace build (with its static safety gating) and the replay loop.
 *
 * The replay loop is a semantic twin of the decoded executor body
 * restricted to straight-line resident-loop iterations: same two-phase
 * bundle commit (unless the build proved a bundle direct-committable),
 * same nullification and sensitivity accounting, same per-loop
 * attribution — but with the block walk, fetch-path test and
 * per-bundle counter updates hoisted out (bulk per-iteration, and for
 * counted loops bulk per-activation). Every counter it touches must
 * end a run bit-identical to the general path; the engine-differential
 * test enforces that against the reference interpreter with the cache
 * force-enabled and force-disabled.
 */

#include "sim/trace_cache.hh"

#include <algorithm>

#include "obs/prof.hh"
#include "sim/dispatch.hh"
#include "sim/vliw_sim.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

std::int64_t
sat16(std::int64_t v)
{
    return std::clamp<std::int64_t>(v, -32768, 32767);
}

double
asDouble(std::int64_t v)
{
    double d;
    __builtin_memcpy(&d, &v, sizeof(d));
    return d;
}

std::int64_t
asBits(double d)
{
    std::int64_t v;
    __builtin_memcpy(&v, &d, sizeof(v));
    return v;
}

/**
 * The loop's own backedge inside its head block: BR_CLOOP/BR_WLOOP
 * (by ctx.counted) targeting the head. Returns the op and its bundle
 * index, or {nullptr, -1}.
 */
struct BackedgeLoc
{
    const MicroOp *op = nullptr;
    std::int32_t bundle = -1;
};

BackedgeLoc
findBackedge(const LoopCtx &ctx, const DecodedFunction &df)
{
    const DecodedBlock &db = df.blocks[ctx.head];
    const Opcode beOp =
        ctx.counted ? Opcode::BR_CLOOP : Opcode::BR_WLOOP;
    for (std::uint32_t bi = 0; bi < db.bundleCount; ++bi) {
        const DecodedBundle &bu = df.bundles[db.firstBundle + bi];
        for (std::uint32_t oi = 0; oi < bu.count; ++oi) {
            const MicroOp &m = df.ops[bu.first + oi];
            if (m.op == beOp && m.target == ctx.head)
                return {&m, static_cast<std::int32_t>(bi)};
        }
    }
    return {};
}

} // namespace

const char *
traceBailoutReasonName(TraceBailoutReason r)
{
    switch (r) {
      case TraceBailoutReason::None: return "none";
      case TraceBailoutReason::Unknown: return "unknown";
      case TraceBailoutReason::EmptyBody: return "emptyBody";
      case TraceBailoutReason::NoHeadBackedge:
        return "noHeadBackedge";
      case TraceBailoutReason::GuardedBackedge:
        return "guardedBackedge";
      case TraceBailoutReason::SlotSensitiveBackedge:
        return "slotSensitiveBackedge";
      case TraceBailoutReason::CallInBody: return "callInBody";
      case TraceBailoutReason::MultiControlOp:
        return "multiControlOp";
      case TraceBailoutReason::NestedLoop: return "nestedLoop";
      case TraceBailoutReason::MultiBackedge:
        return "multiBackedge";
      case TraceBailoutReason::BelowEngageThreshold:
        return "belowEngageThreshold";
      case TraceBailoutReason::Count: break;
    }
    return "unknown";
}

TraceBailoutReason
classifyTraceBody(const LoopCtx &ctx, const DecodedFunction &df,
                  bool predReplay)
{
    const DecodedBlock &db = df.blocks[ctx.head];
    if (!db.valid || db.bundleCount == 0)
        return TraceBailoutReason::EmptyBody;

    // The backedge: the loop's own BR_CLOOP / BR_WLOOP back to the
    // head, non-sensitive; the strict tier also requires it
    // unguarded (a predicated backedge could be nullified
    // mid-activation, which only the predicated replay path models).
    const BackedgeLoc be = findBackedge(ctx, df);
    if (be.op == nullptr)
        return TraceBailoutReason::NoHeadBackedge;
    if (be.op->guard != kNoPred && !predReplay)
        return TraceBailoutReason::GuardedBackedge;
    if (be.op->sensitive)
        return TraceBailoutReason::SlotSensitiveBackedge;

    // Every other op up to the backedge bundle must be straight-line,
    // or — predicated tier only — a side exit the replay loop can
    // compile into a trace-exit check. Calls, nested loops and second
    // backedges stay untraceable under either tier (a second backedge
    // mutates the activation's own iteration state, which a side-exit
    // check cannot model).
    for (std::int32_t bi = 0; bi <= be.bundle; ++bi) {
        const DecodedBundle &bu = df.bundles[db.firstBundle + bi];
        for (std::uint32_t oi = 0; oi < bu.count; ++oi) {
            const MicroOp &m = df.ops[bu.first + oi];
            if (&m == be.op)
                continue;
            switch (m.handler) {
              case ExecHandler::PRED_DEF:
              case ExecHandler::LOAD:
              case ExecHandler::STORE:
              case ExecHandler::MOV:
              case ExecHandler::ABS:
              case ExecHandler::ITOF:
              case ExecHandler::FTOI:
              case ExecHandler::SELECT:
              case ExecHandler::ALU:
                break;
              case ExecHandler::CALL:
              case ExecHandler::RET:
                return TraceBailoutReason::CallInBody;
              case ExecHandler::BR:
                if (!predReplay)
                    return TraceBailoutReason::MultiControlOp;
                // A second while backedge is not a side exit: the
                // general path's BR handler gives it loop-iteration
                // semantics (only in a non-counted context).
                if (!ctx.counted && m.op == Opcode::BR_WLOOP &&
                    m.target == ctx.head)
                    return TraceBailoutReason::MultiBackedge;
                break;
              case ExecHandler::JUMP:
                if (!predReplay)
                    return TraceBailoutReason::MultiControlOp;
                break;
              case ExecHandler::BR_CLOOP:
                return predReplay
                           ? TraceBailoutReason::MultiBackedge
                           : TraceBailoutReason::MultiControlOp;
              case ExecHandler::LOOP:
                return predReplay
                           ? TraceBailoutReason::NestedLoop
                           : TraceBailoutReason::MultiControlOp;
              default:
                return TraceBailoutReason::MultiControlOp;
            }
        }
    }
    return TraceBailoutReason::None;
}

void
accumulateTraceCacheStats(TraceCacheStats &into,
                          const TraceCacheStats &from)
{
    into.builds += from.builds;
    into.replays += from.replays;
    into.bailouts += from.bailouts;
    into.invalidations += from.invalidations;
    into.replayedIterations += from.replayedIterations;
    into.replayedOps += from.replayedOps;
    into.predReplay.builds += from.predReplay.builds;
    into.predReplay.replays += from.predReplay.replays;
    into.predReplay.iterations += from.predReplay.iterations;
    into.predReplay.ops += from.predReplay.ops;
    into.predReplay.sideExits += from.predReplay.sideExits;
    into.predReplay.backedgeFallthroughs +=
        from.predReplay.backedgeFallthroughs;
    into.predReplay.midEngagements += from.predReplay.midEngagements;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceBailoutReason::Count);
         ++i)
        into.bailoutsBy[i] += from.bailoutsBy[i];
    if (into.perLoop.size() < from.perLoop.size())
        into.perLoop.resize(from.perLoop.size());
    for (std::size_t id = 0; id < from.perLoop.size(); ++id) {
        const TraceCacheStats::PerLoop &src = from.perLoop[id];
        TraceCacheStats::PerLoop &dst = into.perLoop[id];
        dst.replays += src.replays;
        dst.iterations += src.iterations;
        dst.ops += src.ops;
        dst.bailouts += src.bailouts;
        if (src.lastReason != TraceBailoutReason::None)
            dst.lastReason = src.lastReason;
    }
}

TraceCache::TraceCache(std::size_t numLoops, bool slotMode,
                       bool predReplay)
    : traces_(numLoops), slotMode_(slotMode), predReplay_(predReplay)
{
    stats_.perLoop.resize(numLoops);
}

void
TraceCache::resetRunStats()
{
    TraceCacheStats fresh;
    fresh.perLoop.resize(traces_.size());
    stats_ = std::move(fresh);
}

void
TraceCache::countBailout(int loopId, TraceBailoutReason reason)
{
    ++stats_.bailouts;
    ++stats_.bailoutsBy[static_cast<std::size_t>(reason)];
    TraceCacheStats::PerLoop &pl = stats_.perLoop[loopId];
    ++pl.bailouts;
    pl.lastReason = reason;
}

void
TraceCache::invalidate(int loopId)
{
    LoopTrace &tr = traces_[loopId];
    if (tr.state != LoopTrace::State::Ready)
        return;
    tr.state = LoopTrace::State::Stale;
    ++stats_.invalidations;
}

LoopTrace &
TraceCache::acquire(const LoopCtx &ctx, const DecodedFunction &df)
{
    LBP_ASSERT(ctx.loopId >= 0 &&
                   static_cast<std::size_t>(ctx.loopId) <
                       traces_.size(),
               "trace cache: loop id out of range");
    LoopTrace &tr = traces_[ctx.loopId];
    if (tr.state == LoopTrace::State::Unbuilt)
        build(tr, ctx, df);
    else if (tr.state == LoopTrace::State::Stale)
        tr.state = LoopTrace::State::Ready;  // O(1): see State::Stale
    return tr;
}

void
TraceCache::build(LoopTrace &tr, const LoopCtx &ctx,
                  const DecodedFunction &df)
{
    obs::prof::ScopedRegion profRegion(
        obs::prof::Region::TraceBuild);
    tr.wloop = !ctx.counted;

    // Static gating first: any verdict other than None is a body
    // shape the replay loop cannot reproduce bit-exactly, recorded on
    // the trace so each later declined activation knows its reason.
    const TraceBailoutReason verdict =
        classifyTraceBody(ctx, df, predReplay_);
    if (verdict != TraceBailoutReason::None) {
        tr.state = LoopTrace::State::Untraceable;
        tr.reason = verdict;
        return;
    }
    // A body the strict tier rejects but the wide tier admits needs
    // the predicated replay path (control ops stay in the stream).
    tr.predicated =
        predReplay_ &&
        classifyTraceBody(ctx, df, false) != TraceBailoutReason::None;

    const DecodedBlock &db = df.blocks[ctx.head];
    const BackedgeLoc be = findBackedge(ctx, df);
    const MicroOp *const backedge = be.op;
    const std::int32_t beBundle = be.bundle;

    // Flatten bundles 0..backedge, baking the static facts replay
    // uses: can the op ever be nullified, and can the bundle commit
    // writes in place (no op reads register/predicate/slot state an
    // earlier same-bundle op writes; no load after a store).
    for (std::int32_t bi = 0; bi <= beBundle; ++bi) {
        const DecodedBundle &bu = df.bundles[db.firstBundle + bi];
        TraceBundle tb;
        tb.first = static_cast<std::uint32_t>(tr.ops.size());
        tb.sizeOps = bu.sizeOps;

        std::vector<std::int32_t> wRegs, wPreds, wSlots;
        bool sawStore = false;
        int slotWrites = 0;
        bool direct = true;
        auto wrote = [](const std::vector<std::int32_t> &v,
                        std::int32_t x) {
            return std::find(v.begin(), v.end(), x) != v.end();
        };
        auto readsEarlierWrite = [&](const MicroOp &m) {
            if (m.guard != kNoPred && wrote(wPreds, m.guard))
                return true;
            if (slotMode_ && m.sensitive && wrote(wSlots, m.slot))
                return true;
            for (const XSrc &s : m.src) {
                if (s.kind == XSrc::REG &&
                    wrote(wRegs, static_cast<std::int32_t>(s.idx)))
                    return true;
                if (s.kind == XSrc::PRED &&
                    wrote(wPreds, static_cast<std::int32_t>(s.idx)))
                    return true;
            }
            return m.handler == ExecHandler::LOAD && sawStore;
        };

        for (std::uint32_t oi = 0; oi < bu.count; ++oi) {
            const MicroOp &m = df.ops[bu.first + oi];
            if (&m == backedge) {
                if (!tr.predicated)
                    continue;
                // Predicated traces keep the backedge in the stream
                // so its guard and condition read live bundle-order
                // state; readsEarlierWrite covers its operands the
                // same way it covers every other op.
                tr.beOpIndex =
                    static_cast<std::uint32_t>(tr.ops.size());
            }
            if (readsEarlierWrite(m))
                direct = false;
            if (m.handler == ExecHandler::PRED_DEF) {
                auto recDst = [&](PredDefKind k, std::uint8_t kind,
                                  std::int32_t idx) {
                    if (k == PredDefKind::NONE || kind == 0)
                        return;
                    if (kind == 2) {
                        wSlots.push_back(idx);
                        ++slotWrites;
                    } else {
                        wPreds.push_back(idx);
                    }
                };
                recDst(m.k0, m.pdKind0, m.pdIdx0);
                recDst(m.k1, m.pdKind1, m.pdIdx1);
            } else if (m.handler == ExecHandler::STORE) {
                sawStore = true;
            } else if (m.dstReg >= 0) {
                wRegs.push_back(m.dstReg);
            }
            MicroOp copy = m;
            copy.alwaysExec = m.guard == kNoPred &&
                              !(slotMode_ && m.sensitive);
            if (slotMode_ && m.sensitive) {
                ++tr.sensitivePerIter;
                ++tb.sensOps;
            }
            tr.ops.push_back(copy);
        }
        // Two slot writes in one cycle trip a conflict assert on the
        // two-phase path; keep that diagnosable.
        if (slotWrites >= 2)
            direct = false;
        // While backedges read their condition at the head of the
        // bundle in replay; that snapshot is only exact if nothing in
        // the bundle commits to the condition sources before it.
        // Predicated traces keep the backedge in stream order, where
        // readsEarlierWrite already covered its operands.
        if (bi == beBundle && tr.wloop && !tr.predicated) {
            for (const XSrc *s :
                 {&backedge->src[0], &backedge->src[1]}) {
                if ((s->kind == XSrc::REG &&
                     wrote(wRegs,
                           static_cast<std::int32_t>(s->idx))) ||
                    (s->kind == XSrc::PRED &&
                     wrote(wPreds,
                           static_cast<std::int32_t>(s->idx))))
                    direct = false;
            }
        }
        tb.count =
            static_cast<std::uint32_t>(tr.ops.size()) - tb.first;
        tb.direct = direct;
        tr.bundles.push_back(tb);
        tr.opsPerIter += static_cast<std::uint64_t>(bu.sizeOps);
    }

    tr.beCond = backedge->cond;
    tr.beSrc0 = backedge->src[0];
    tr.beSrc1 = backedge->src[1];
    tr.resumeBundle = static_cast<std::uint32_t>(beBundle + 1);
    tr.bundlesPerIter = static_cast<std::uint64_t>(beBundle) + 1;
    tr.state = LoopTrace::State::Ready;
    ++stats_.builds;
    if (tr.predicated)
        ++stats_.predReplay.builds;
}

ReplayResult
VliwSim::replayResident(LoopCtx &ctx, const DecodedFunction &df,
                        std::int64_t *regs, std::uint8_t *preds,
                        std::size_t startBundle)
{
    TraceCache &tc = *traceCache_;
    LoopTrace &tr = tc.acquire(ctx, df);
    if (tr.state != LoopTrace::State::Ready) {
        // Once per activation, not once per iteration arrival.
        if (!ctx.traceDeclined) {
            ctx.traceDeclined = true;
            tc.countBailout(ctx.loopId, tr.reason);
        }
        return {};
    }
    if (startBundle != 0 &&
        (!tr.predicated || startBundle >= tr.bundles.size())) {
        // Arrival point outside the trace extent — or a fast-tier
        // trace, which replays whole iterations from bundle 0 only.
        // Not a bailout: the general path runs this bundle and the
        // gate retries at the next head-block arrival.
        return {};
    }

    obs::prof::ScopedRegion profRegion(
        obs::prof::Region::SimReplay);
    TraceCacheStats &tcs = tc.stats();
    ++tcs.replays;
    LoopStats &ls = stats_.loops[ctx.loopId];
    const bool slotMode = tc.slotMode();
    std::uint8_t *const slotPred = slotPred_.data();

    auto readSrc = [&](const XSrc &s) -> std::int64_t {
        if (s.kind == XSrc::REG)
            return regs[s.idx];
        if (s.kind == XSrc::IMM)
            return s.imm;
        return preds[s.idx];
    };

    // Deferred writes for bundles the build could not prove
    // direct-committable — same shapes as the executor body.
    struct RegWrite { std::int32_t r; std::int64_t v; };
    struct PredWrite { std::int32_t p; std::uint8_t v; };
    struct SlotWrite { std::int32_t s; std::uint8_t v; };
    struct MemWrite { Opcode op; std::int64_t addr; std::int64_t v; };
    RegWrite regW[Machine::width];
    PredWrite predW[2 * Machine::width];
    SlotWrite slotW[2 * Machine::width];
    MemWrite memW[Machine::width];

    auto storeBytes = [&](Opcode op, std::int64_t addr,
                          std::int64_t v) {
        const size_t need = op == Opcode::ST_B ? 1
                            : op == Opcode::ST_H ? 2 : 4;
        LBP_ASSERT(addr >= 0 && static_cast<size_t>(addr) + need <=
                                    mem_.size(),
                   "store fault @", addr);
        for (size_t k = 0; k < need; ++k) {
            mem_[addr + k] = static_cast<std::uint8_t>(
                (v >> (8 * k)) & 0xff);
        }
    };

    const MicroOp *const opBase = tr.ops.data();
    const TraceBundle *const buBase = tr.bundles.data();
    const std::size_t nBundles = tr.bundles.size();
    const bool wloop = tr.wloop;
    const bool predicated = tr.predicated;
    const std::size_t beIdx = tr.beOpIndex;

    // While-backedge condition operands, snapshotted at the head of
    // the backedge bundle (exactness guaranteed by the build). Fast
    // tier only: predicated traces evaluate the backedge op in
    // stream order instead.
    std::int64_t beA = 0, beB = 0;

    // Per-bundle control outcome. Only predicated traces carry
    // control ops, so the fast tier never sets these; the predicated
    // driver resets them before each bundle.
    bool sawControl = false;
    bool backTaken = false;
    bool backFell = false;
    bool countedExit = false;
    bool wloopExit = false;
    bool sideTaken = false;
    BlockId sideTgt = kNoBlock;

    auto execBundles = [&](std::size_t biBegin, std::size_t biEnd) {
        LBP_DISPATCH_TABLE();
        for (std::size_t bi = biBegin; bi < biEnd; ++bi) {
            const TraceBundle &tb = buBase[bi];
            if (wloop && !predicated && bi + 1 == nBundles) {
                beA = readSrc(tr.beSrc0);
                beB = readSrc(tr.beSrc1);
            }
            const bool direct = tb.direct;
            int nRegW = 0, nPredW = 0, nSlotW = 0, nMemW = 0;

            for (const MicroOp *m = opBase + tb.first,
                               *const end = m + tb.count;
                 m != end; ++m) {
                if (!m->alwaysExec) {
                    bool exec;
                    if (slotMode && m->sensitive)
                        exec = slotPred[m->slot] != 0;
                    else
                        exec = m->guard == kNoPred ||
                               preds[m->guard] != 0;
                    if (!exec &&
                        m->handler != ExecHandler::PRED_DEF) {
                        ++stats_.opsNullified;
                        // Nullified branches still count as branches
                        // on the general path (isBranch covers BR /
                        // JUMP / BR_CLOOP / BR_WLOOP); a nullified
                        // backedge means the iteration falls through
                        // it and the activation stays live.
                        if (predicated &&
                            (m->handler == ExecHandler::BR ||
                             m->handler == ExecHandler::JUMP ||
                             m->handler == ExecHandler::BR_CLOOP)) {
                            ++stats_.branches;
                            if (static_cast<std::size_t>(
                                    m - opBase) == beIdx)
                                backFell = true;
                        }
                        continue;
                    }
                }

                LBP_DISPATCH(m->handler) {
                  LBP_HANDLER(PRED_DEF) {
                    bool g;
                    if (m->alwaysExec) {
                        g = true;
                    } else if (slotMode && m->sensitive) {
                        g = slotPred[m->slot] != 0;
                    } else if (m->guard != kNoPred) {
                        g = preds[m->guard] != 0;
                    } else {
                        g = true;
                    }
                    const std::int64_t a = readSrc(m->src[0]);
                    const std::int64_t b = readSrc(m->src[1]);
                    const bool c = evalCond(m->cond, a, b);
                    auto apply = [&](PredDefKind k,
                                     std::uint8_t dKind,
                                     std::int32_t dIdx) {
                        if (k == PredDefKind::NONE || dKind == 0)
                            return;
                        int w = -1;
                        switch (k) {
                          case PredDefKind::UT:
                            w = g ? (c ? 1 : 0) : 0;
                            break;
                          case PredDefKind::UF:
                            w = g ? (c ? 0 : 1) : 0;
                            break;
                          case PredDefKind::OT:
                            if (g && c) w = 1;
                            break;
                          case PredDefKind::OF:
                            if (g && !c) w = 1;
                            break;
                          case PredDefKind::AT:
                            if (g && !c) w = 0;
                            break;
                          case PredDefKind::AF:
                            if (g && c) w = 0;
                            break;
                          case PredDefKind::CT:
                            if (g) w = c;
                            break;
                          case PredDefKind::CF:
                            if (g) w = !c;
                            break;
                          default:
                            LBP_PANIC("bad def kind");
                        }
                        if (w < 0)
                            return;
                        if (dKind == 2) {
                            if (direct)
                                slotPred[dIdx] =
                                    static_cast<std::uint8_t>(w);
                            else
                                slotW[nSlotW++] =
                                    {dIdx,
                                     static_cast<std::uint8_t>(w)};
                        } else {
                            if (direct)
                                preds[dIdx] =
                                    static_cast<std::uint8_t>(w);
                            else
                                predW[nPredW++] =
                                    {dIdx,
                                     static_cast<std::uint8_t>(w)};
                        }
                    };
                    apply(m->k0, m->pdKind0, m->pdIdx0);
                    apply(m->k1, m->pdKind1, m->pdIdx1);
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(LOAD) {
                    const std::int64_t addr =
                        readSrc(m->src[0]) + readSrc(m->src[1]);
                    const size_t need = m->op == Opcode::LD_B ? 1
                                        : m->op == Opcode::LD_H ? 2
                                                                : 4;
                    std::int64_t v = 0;
                    const bool oob =
                        addr < 0 ||
                        static_cast<size_t>(addr) + need >
                            mem_.size();
                    if (oob) {
                        LBP_ASSERT(m->speculative,
                                   "non-speculative load fault @",
                                   addr);
                        v = 0;
                    } else {
                        std::uint32_t raw = 0;
                        for (size_t i = 0; i < need; ++i) {
                            raw |= static_cast<std::uint32_t>(
                                       mem_[addr + i])
                                   << (8 * i);
                        }
                        v = m->op == Opcode::LD_B
                                ? static_cast<std::int8_t>(raw)
                            : m->op == Opcode::LD_H
                                ? static_cast<std::int16_t>(raw)
                                : static_cast<std::int32_t>(raw);
                    }
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(STORE) {
                    const std::int64_t addr =
                        readSrc(m->src[0]) + readSrc(m->src[1]);
                    const std::int64_t v = readSrc(m->src[2]);
                    if (direct)
                        storeBytes(m->op, addr, v);
                    else
                        memW[nMemW++] = {m->op, addr, v};
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(MOV) {
                    const std::int64_t v = readSrc(m->src[0]);
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }
                  LBP_HANDLER(ABS) {
                    const std::int64_t v =
                        std::abs(readSrc(m->src[0]));
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }
                  LBP_HANDLER(ITOF) {
                    const std::int64_t v = asBits(
                        static_cast<double>(readSrc(m->src[0])));
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }
                  LBP_HANDLER(FTOI) {
                    const std::int64_t v =
                        static_cast<std::int64_t>(
                            asDouble(readSrc(m->src[0])));
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }
                  LBP_HANDLER(SELECT) {
                    const std::int64_t c = readSrc(m->src[0]);
                    const std::int64_t v = c ? readSrc(m->src[1])
                                             : readSrc(m->src[2]);
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(ALU) {
                    const std::int64_t a = readSrc(m->src[0]);
                    const std::int64_t b = readSrc(m->src[1]);
                    std::int64_t v = 0;
                    switch (m->op) {
                      case Opcode::ADD: v = a + b; break;
                      case Opcode::SUB: v = a - b; break;
                      case Opcode::MUL: v = a * b; break;
                      case Opcode::DIV:
                        LBP_ASSERT(b != 0, "div by zero");
                        v = a / b;
                        break;
                      case Opcode::REM:
                        LBP_ASSERT(b != 0, "rem by zero");
                        v = a % b;
                        break;
                      case Opcode::AND: v = a & b; break;
                      case Opcode::OR: v = a | b; break;
                      case Opcode::XOR: v = a ^ b; break;
                      case Opcode::SHL: v = a << (b & 63); break;
                      case Opcode::SHR:
                        v = static_cast<std::int64_t>(
                            static_cast<std::uint64_t>(a) >>
                            (b & 63));
                        break;
                      case Opcode::SHRA: v = a >> (b & 63); break;
                      case Opcode::MIN: v = std::min(a, b); break;
                      case Opcode::MAX: v = std::max(a, b); break;
                      case Opcode::SATADD: v = sat16(a + b); break;
                      case Opcode::SATSUB: v = sat16(a - b); break;
                      case Opcode::CMP:
                        v = evalCond(m->cond, a, b) ? 1 : 0;
                        break;
                      case Opcode::FADD:
                        v = asBits(asDouble(a) + asDouble(b));
                        break;
                      case Opcode::FSUB:
                        v = asBits(asDouble(a) - asDouble(b));
                        break;
                      case Opcode::FMUL:
                        v = asBits(asDouble(a) * asDouble(b));
                        break;
                      case Opcode::FDIV:
                        v = asBits(asDouble(a) / asDouble(b));
                        break;
                      default:
                        LBP_PANIC("unhandled opcode in replay: ",
                                  opcodeName(m->op));
                    }
                    if (direct)
                        regs[m->dstReg] = v;
                    else
                        regW[nRegW++] = {m->dstReg, v};
                    LBP_NEXT_OP;
                  }

                  // Control ops survive the build gating only in
                  // predicated traces: the activation's own backedge
                  // (at beIdx) plus side exits. Each mirrors the
                  // general path's handler semantics exactly; taken
                  // transfers are resolved by the driver after the
                  // bundle commits, like the general path's
                  // end-of-bundle redirect.
                  LBP_HANDLER(BR) {
                    ++stats_.branches;
                    const std::int64_t a = readSrc(m->src[0]);
                    const std::int64_t b = readSrc(m->src[1]);
                    const bool taken = evalCond(m->cond, a, b);
                    if (wloop &&
                        static_cast<std::size_t>(m - opBase) ==
                            beIdx) {
                        ++ctx.iterations;
                        ++ls.bufferIterations;
                        if (taken) {
                            ++stats_.branchesTaken;
                            LBP_ASSERT(!sawControl,
                                       "two control transfers in one "
                                       "bundle");
                            sawControl = true;
                            backTaken = true; // free buffered loop-back
                        } else {
                            wloopExit = true; // caller pays the penalty
                        }
                    } else if (taken) {
                        ++stats_.branchesTaken;
                        LBP_ASSERT(!sawControl,
                                   "two control transfers in one "
                                   "bundle");
                        sawControl = true;
                        sideTaken = true;
                        sideTgt = m->target;
                    }
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(JUMP) {
                    ++stats_.branches;
                    ++stats_.branchesTaken;
                    LBP_ASSERT(!sawControl,
                               "two control transfers in one bundle");
                    sawControl = true;
                    sideTaken = true;
                    sideTgt = m->target;
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(BR_CLOOP) {
                    // Only the loop's own backedge survives gating.
                    ++stats_.branches;
                    ++ctx.iterations;
                    ++ls.bufferIterations;
                    --ctx.remaining;
                    if (ctx.remaining > 0) {
                        ++stats_.branchesTaken;
                        LBP_ASSERT(!sawControl,
                                   "two control transfers in one "
                                   "bundle");
                        sawControl = true;
                        backTaken = true; // free buffered loop-back
                    } else {
                        countedExit = true; // predicted fall-through
                    }
                    LBP_NEXT_OP;
                  }

                  LBP_HANDLER(LOOP)
                  LBP_HANDLER(CALL)
                  LBP_HANDLER(RET) {
                    LBP_PANIC("control op in replay trace");
                  }
                  LBP_BAD_HANDLER();
                }
                LBP_DISPATCH_END;
            }

            if (!direct) {
                for (int i = 0; i < nRegW; ++i)
                    regs[regW[i].r] = regW[i].v;
                for (int i = 0; i < nPredW; ++i)
                    preds[predW[i].p] = predW[i].v;
                for (int i = 0; i < nSlotW; ++i) {
                    for (int j = i + 1; j < nSlotW; ++j) {
                        LBP_ASSERT(slotW[i].s != slotW[j].s ||
                                       slotW[i].v == slotW[j].v,
                                   "conflicting same-cycle slot-"
                                   "predicate writes");
                    }
                    slotPred[slotW[i].s] = slotW[i].v;
                }
                for (int i = 0; i < nMemW; ++i)
                    storeBytes(memW[i].op, memW[i].addr, memW[i].v);
            }
        }
    };

    std::uint64_t iters = 0;
    std::uint64_t opsIssued = 0;
    ReplayOutcome outcome;

    if (predicated) {
        // Predicated tier: per-bundle driver. No bulk accounting —
        // any bundle may end the engagement (taken side exit,
        // backedge exit, nullified backedge), so every counter the
        // general path moves per head-block bundle moves here per
        // trace bundle, in the same order.
        ++tcs.predReplay.replays;
        if (startBundle != 0)
            ++tcs.predReplay.midEngagements;
        outcome = ReplayOutcome::NotEngaged;
        std::size_t bi = startBundle;
        for (;;) {
            const TraceBundle &tb = buBase[bi];
            LBP_ASSERT(++bundlesExecuted_ <= cfg_.maxBundles,
                       "bundle budget exceeded");
            ++stats_.bundles;
            ++stats_.cycles;
            cycleStack_.charge(ctx.loopId,
                               obs::CycleClass::IssueFromTraceReplay,
                               1);
            stats_.opsFetched += tb.sizeOps;
            stats_.opsFromBuffer += tb.sizeOps;
            ls.opsFromBuffer += tb.sizeOps;
            if (slotMode)
                stats_.opsSensitive += tb.sensOps;
            opsIssued += static_cast<std::uint64_t>(tb.sizeOps);

            sawControl = false;
            backTaken = false;
            backFell = false;
            countedExit = false;
            wloopExit = false;
            sideTaken = false;
            execBundles(bi, bi + 1);

            if (sideTaken) {
                // The caller mirrors the general path's end-of-bundle
                // redirect (context cancellation + taken-branch
                // penalty); a same-bundle backedge exit retires the
                // activation first (ctxDone below).
                if (countedExit || wloopExit)
                    ++iters;
                outcome = ReplayOutcome::SideExit;
                break;
            }
            if (backTaken) {
                ++iters;
                bi = 0;
                continue;
            }
            if (countedExit) {
                ++iters;
                outcome = ReplayOutcome::CountedDone;
                break;
            }
            if (wloopExit) {
                ++iters;
                outcome = ReplayOutcome::WloopExit;
                break;
            }
            if (backFell) {
                outcome = ReplayOutcome::BackedgeFellThrough;
                break;
            }
            ++bi;
            LBP_ASSERT(bi < nBundles, "replay ran past trace extent");
        }
        if (outcome == ReplayOutcome::SideExit)
            ++tcs.predReplay.sideExits;
        else if (outcome == ReplayOutcome::BackedgeFellThrough)
            ++tcs.predReplay.backedgeFallthroughs;
        tcs.predReplay.iterations += iters;
        tcs.predReplay.ops += opsIssued;
    } else if (!wloop) {
        // Counted: the iteration count is known now, so every
        // per-iteration counter is applied in one shot and the hot
        // loop below runs pure op semantics.
        const std::uint64_t n =
            static_cast<std::uint64_t>(ctx.remaining);
        bundlesExecuted_ += n * tr.bundlesPerIter;
        LBP_ASSERT(bundlesExecuted_ <= cfg_.maxBundles,
                   "bundle budget exceeded");
        stats_.bundles += n * tr.bundlesPerIter;
        stats_.cycles += n * tr.bundlesPerIter;
        cycleStack_.charge(ctx.loopId,
                           obs::CycleClass::IssueFromTraceReplay,
                           n * tr.bundlesPerIter);
        stats_.opsFetched += n * tr.opsPerIter;
        stats_.opsFromBuffer += n * tr.opsPerIter;
        ls.opsFromBuffer += n * tr.opsPerIter;
        if (slotMode)
            stats_.opsSensitive += n * tr.sensitivePerIter;
        stats_.branches += n;
        stats_.branchesTaken += n - 1;
        ctx.iterations += n;
        ls.bufferIterations += n;
        ctx.remaining = 0;
        for (std::uint64_t it = 0; it < n; ++it)
            execBundles(0, nBundles);
        iters = n;
        opsIssued = n * tr.opsPerIter;
        outcome = ReplayOutcome::CountedDone;
    } else {
        outcome = ReplayOutcome::WloopExit;
        for (;;) {
            bundlesExecuted_ += tr.bundlesPerIter;
            LBP_ASSERT(bundlesExecuted_ <= cfg_.maxBundles,
                       "bundle budget exceeded");
            stats_.bundles += tr.bundlesPerIter;
            stats_.cycles += tr.bundlesPerIter;
            cycleStack_.charge(ctx.loopId,
                               obs::CycleClass::IssueFromTraceReplay,
                               tr.bundlesPerIter);
            stats_.opsFetched += tr.opsPerIter;
            stats_.opsFromBuffer += tr.opsPerIter;
            ls.opsFromBuffer += tr.opsPerIter;
            if (slotMode)
                stats_.opsSensitive += tr.sensitivePerIter;
            execBundles(0, nBundles);
            ++iters;
            ++stats_.branches;
            ++ctx.iterations;
            ++ls.bufferIterations;
            if (!evalCond(tr.beCond, beA, beB))
                break;  // while exit: the caller pays the penalty
            ++stats_.branchesTaken;
        }
        opsIssued = iters * tr.opsPerIter;
    }

    tcs.replayedIterations += iters;
    tcs.replayedOps += opsIssued;
    TraceCacheStats::PerLoop &pl = tcs.perLoop[ctx.loopId];
    ++pl.replays;
    pl.iterations += iters;
    pl.ops += opsIssued;

    ReplayResult rr;
    rr.outcome = outcome;
    rr.resumeBundle = tr.resumeBundle;
    rr.sideTarget = sideTgt;
    rr.ctxDone = countedExit || wloopExit;
    rr.whileExit = wloopExit;
    return rr;
}

} // namespace lbp
