/**
 * @file
 * Shared helpers for the figure/table reproduction benches: compile a
 * workload under both configurations (cached), run the simulator
 * across buffer sizes, and format result tables.
 */

#ifndef LBP_BENCH_COMMON_HH
#define LBP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/compiler.hh"
#include "core/metrics.hh"
#include "obs/cycle_stack.hh"
#include "obs/json.hh"
#include "obs/pmu.hh"
#include "power/fetch_energy.hh"
#include "sim/trace_cache.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace bench
{

/** Flags a bench accepts — the parseBenchOptions mask. */
enum BenchFlag : unsigned
{
    kBenchFlagQuick = 1u << 0,   ///< --quick
    kBenchFlagJson = 1u << 1,    ///< --json[=PATH]
    kBenchFlagHistory = 1u << 2, ///< --history[=PATH] (implies json)
    kBenchFlagLoops = 1u << 3,   ///< --loops
    kBenchFlagThreads = 1u << 4, ///< --threads=N
    kBenchFlagProf = 1u << 5,    ///< --prof
    kBenchFlagPmu = 1u << 6,     ///< --pmu
};

/**
 * The flag set shared by the JSON-emitting benches, parsed once by
 * parseBenchOptions instead of per-main copies of the argv loop.
 */
struct BenchOptions
{
    bool quick = false;
    bool json = false;
    bool loops = false;
    bool prof = false;
    bool pmu = false;
    int threads = 0;         ///< 0 = hardware concurrency
    std::string jsonPath;    ///< parseBenchOptions seeds the default
    std::string historyPath; ///< empty = no history append
};

/**
 * Parse argv against the flags named in @p mask (BenchFlag bits).
 * `--history` implies `--json`. On an unknown or unaccepted flag,
 * prints a usage line derived from the mask to stderr and returns
 * false — callers `return 2`, the benches' historical usage exit
 * code.
 */
bool parseBenchOptions(int argc, char **argv, unsigned mask,
                       const std::string &defaultJsonPath,
                       BenchOptions &o);

/**
 * Arm the host PMU session for a `--pmu` run (no-op otherwise).
 * Exits 1 when the flag asks for a backend that is compiled out
 * (mirrors --prof); a runtime open failure — restricted
 * perf_event_paranoid, no hardware PMU — prints the reason and
 * returns normally, so the run continues and the document records
 * available=false.
 */
void startBenchPmu(const BenchOptions &o);

/**
 * Stop the `--pmu` session, print the per-region host-counter table,
 * and return the document's "pmu" block. Always returns a block so
 * every schema-v5 document has the key: without --pmu it is the
 * deterministic {"requested":false, "available":false, reason} —
 * bench baselines stay byte-reproducible on any host (the diff gate
 * additionally skips "pmu" entirely, since requested runs are
 * host-variant).
 */
obs::Json finishBenchPmu(const BenchOptions &o);

/** The buffer sizes swept by Figure 7. */
const std::vector<int> &figureBufferSizes();

/**
 * Compile one workload at one level (verifying checksums), memoized
 * on (name, level, predication scheme): identical programs are
 * compiled once per process no matter how many sweep points reuse
 * them, so reallocateBuffers is the only per-sweep-point work. The
 * `mode` argument selects the compilation that matches the intended
 * simulation PredMode (REGISTER simulation requires slot lowering
 * off; it only affects the cache key at OptLevel::Aggressive where
 * slot lowering runs). The returned result is shared — callers that
 * resize its buffers (simulate does) must not race on the same cache
 * key from two threads. Acquiring distinct entries concurrently is
 * safe.
 */
CompileResult &compileBench(const std::string &name, OptLevel level,
                            PredMode mode = PredMode::SLOT);

/**
 * Simulate with a buffer size; checks the checksum. When @p tcOut is
 * given and the run had a trace cache, the run's TraceCacheStats are
 * accumulated into it (accumulateTraceCacheStats — pass a freshly
 * zeroed struct for a per-run copy, reuse one across a sweep for the
 * aggregate); it is left untouched otherwise. @p csOut, when given,
 * receives the run's closed per-loop cycle stack.
 */
SimStats simulate(CompileResult &cr, int bufferOps,
                  PredMode mode = PredMode::SLOT,
                  SimEngine engine = SimEngine::DECODED,
                  TraceCacheStats *tcOut = nullptr,
                  obs::CycleStack *csOut = nullptr);

/**
 * Batched-sweep variant of simulate: run the decoded engine over a
 * caller-owned shared predecode of @p cr instead of re-decoding
 * inside the VliwSim constructor. @p img must have been built from
 * @p cr.code (buildDecodedImage); this call reallocates the buffers
 * to @p bufferOps and rebinds the image's allocation-dependent
 * fields, so one decode serves a whole buffer-size sweep. @p tcOut
 * accumulates trace-cache counters as in simulate.
 */
SimStats simulateShared(CompileResult &cr, DecodedImage &img,
                        int bufferOps, PredMode mode = PredMode::SLOT,
                        TraceCacheStats *tcOut = nullptr,
                        obs::CycleStack *csOut = nullptr);

/** The Table-1 benchmark names. */
std::vector<std::string> benchNames();

/**
 * The "cycle_stack" block shared by every cycle-accounting bench
 * document (schema v4): one key per obs::CycleClass in enum order,
 * zeros included, plus "total" — their sum, equal to the simulated
 * cycles the block accounts for. All counters, held exactly by the
 * history gate.
 */
obs::Json cycleStackJson(const obs::CycleRow &row);

/** Print a horizontal rule. */
void rule(char c = '-', int n = 78);

/**
 * Start a machine-readable bench document. Every BENCH_*.json shares
 * this header so the regression gate can diff them uniformly:
 *
 *   schema_version   2 (obs::Json emitter with machine/config blocks)
 *   bench            the bench's short name ("fig7", "sim_fastpath")
 *   machine          host identity (concurrency, compiler, pointer
 *                    width) — identity, not data; diffs ignore it
 *
 * Callers add their own "config" block and result sections.
 */
obs::Json benchJsonDoc(const std::string &benchName);

/** Write a bench document to @p path; exits the process on I/O error. */
void writeBenchJson(const std::string &path, const obs::Json &doc);

/**
 * The `--history[=PATH]` hook shared by every JSON-emitting bench:
 * flatten @p doc into an obs::HistoryRecord and append it to the
 * jsonl store at @p historyPath (default BENCH_history.jsonl), so all
 * benches feed the timeline with one schema. Exits on I/O error.
 */
void appendBenchHistory(const std::string &historyPath,
                        const obs::Json &doc);

/**
 * Compile (cached) + simulate one workload and print its per-loop
 * scorecard (obs::buildLoopScorecard join of the compiler decision
 * log with simulator residency). The scorecard's internal invariant
 * — per-loop buffer ops summing to sim.opsFromBuffer — is asserted.
 */
void dumpLoopScorecard(const std::string &workload, OptLevel level,
                       int bufferOps);

/** `dumpLoopScorecard` over every registered workload. */
void dumpLoopScorecards(OptLevel level, int bufferOps);

} // namespace bench
} // namespace lbp

#endif // LBP_BENCH_COMMON_HH
