/**
 * @file
 * Inliner tests: single-site correctness, parameter/return wiring,
 * recursion rejection, budget enforcement, and hot-site priority.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "profile/profile.hh"
#include "transform/inliner.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

Program
makeCallerCallee(int calleeExtraOps)
{
    Program prog;
    const FuncId callee = prog.newFunction("callee");
    {
        Function &fn = prog.functions[callee];
        const RegId x = fn.newReg();
        const RegId y = fn.newReg();
        fn.params = {x, y};
        fn.numReturns = 1;
        IRBuilder b(prog, callee);
        RegId acc = b.add(R(x), R(y));
        for (int i = 0; i < calleeExtraOps; ++i)
            acc = b.add(R(acc), I(1));
        b.ret({R(acc)});
    }
    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    const RegId total = b.iconst(0);
    b.forLoop(0, 10, 1, [&](RegId i) {
        auto r = b.call(callee, {R(i), I(5)}, 1);
        b.addTo(total, R(total), R(r[0]));
    });
    b.ret({R(total)});
    return prog;
}

TEST(Inliner, SingleSiteSemanticsPreserved)
{
    Program prog = makeCallerCallee(3);
    Interpreter pre(prog);
    const auto before = pre.run();

    auto run = profileProgram(prog);
    auto st = inlineHotCalls(prog, run.profile);
    EXPECT_EQ(st.sitesInlined, 1);
    verifyOrDie(prog);

    Interpreter post(prog);
    const auto after = post.run();
    EXPECT_EQ(before.returns, after.returns);
    // No CALL remains in main's loop.
    bool anyCall = false;
    for (const auto &bb : prog.functions[prog.entryFunc].blocks)
        for (const auto &op : bb.ops)
            anyCall |= op.op == Opcode::CALL;
    EXPECT_FALSE(anyCall);
}

TEST(Inliner, RecursionRejected)
{
    Program prog;
    const FuncId f = prog.newFunction("rec");
    {
        Function &fn = prog.functions[f];
        const RegId x = fn.newReg();
        fn.params = {x};
        fn.numReturns = 1;
        IRBuilder b(prog, f);
        const BlockId base = b.makeBlock();
        const BlockId step = b.makeBlock();
        b.br(CmpCond::LE, R(x), I(0), base);
        b.fallTo(step);
        b.at(step);
        const RegId xm1 = b.sub(R(x), I(1));
        auto r = b.call(f, {R(xm1)}, 1);
        const RegId s = b.add(R(r[0]), R(x));
        b.ret({R(s)});
        b.at(base);
        b.ret({I(0)});
    }
    // Locate the recursive call site and confirm rejection.
    bool found = false;
    for (const auto &bb : prog.functions[f].blocks) {
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            if (bb.ops[i].op == Opcode::CALL) {
                found = true;
                EXPECT_FALSE(inlineCallSite(prog, f, bb.id, i));
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(Inliner, NoInlineRespected)
{
    Program prog = makeCallerCallee(0);
    prog.functions[0].noInline = true;
    auto run = profileProgram(prog);
    auto st = inlineHotCalls(prog, run.profile);
    EXPECT_EQ(st.sitesInlined, 0);
}

TEST(Inliner, BudgetEnforced)
{
    Program prog = makeCallerCallee(100);
    auto run = profileProgram(prog);
    InlineOptions opts;
    opts.maxExpansion = 0.1; // ~12 ops budget < 100-op callee
    auto st = inlineHotCalls(prog, run.profile, opts);
    EXPECT_EQ(st.sitesInlined, 0);
}

TEST(Inliner, HotterSiteWins)
{
    // Two callees; the budget admits only one inline; the hot loop's
    // site must win.
    Program prog;
    FuncId small[2];
    for (int k = 0; k < 2; ++k) {
        small[k] = prog.newFunction("g" + std::to_string(k));
        Function &fn = prog.functions[small[k]];
        const RegId x = fn.newReg();
        fn.params = {x};
        fn.numReturns = 1;
        IRBuilder b(prog, small[k]);
        RegId acc = b.add(R(x), I(k));
        for (int i = 0; i < 12; ++i)
            acc = b.add(R(acc), I(i));
        b.ret({R(acc)});
    }
    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    const RegId total = b.iconst(0);
    b.forLoop(0, 100, 1, [&](RegId i) { // hot
        auto r = b.call(small[0], {R(i)}, 1);
        b.addTo(total, R(total), R(r[0]));
    });
    b.forLoop(0, 2, 1, [&](RegId i) { // cold
        auto r = b.call(small[1], {R(i)}, 1);
        b.addTo(total, R(total), R(r[0]));
    });
    b.ret({R(total)});

    Interpreter pre(prog);
    const auto before = pre.run();
    auto run = profileProgram(prog);
    InlineOptions opts;
    opts.maxExpansion = 0.35; // admits one ~14-op callee only
    auto st = inlineHotCalls(prog, run.profile, opts);
    EXPECT_EQ(st.sitesInlined, 1);
    // The hot callee must be gone from the hot loop.
    int calls0 = 0, calls1 = 0;
    for (const auto &bb : prog.functions[mainF].blocks) {
        for (const auto &op : bb.ops) {
            if (op.op == Opcode::CALL) {
                if (op.callee == small[0])
                    ++calls0;
                if (op.callee == small[1])
                    ++calls1;
            }
        }
    }
    EXPECT_EQ(calls0, 0);
    EXPECT_EQ(calls1, 1);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

TEST(Inliner, MultipleReturnsHandled)
{
    Program prog;
    const FuncId callee = prog.newFunction("minmax");
    {
        Function &fn = prog.functions[callee];
        const RegId x = fn.newReg();
        const RegId y = fn.newReg();
        fn.params = {x, y};
        fn.numReturns = 2;
        IRBuilder b(prog, callee);
        const RegId lo = b.min(R(x), R(y));
        const RegId hi = b.max(R(x), R(y));
        b.ret({R(lo), R(hi)});
    }
    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    const RegId total = b.iconst(0);
    b.forLoop(0, 5, 1, [&](RegId i) {
        auto r = b.call(callee, {R(i), I(3)}, 2);
        const RegId d = b.sub(R(r[1]), R(r[0]));
        b.addTo(total, R(total), R(d));
    });
    b.ret({R(total)});
    Interpreter pre(prog);
    const auto before = pre.run();
    auto run = profileProgram(prog);
    inlineHotCalls(prog, run.profile);
    verifyOrDie(prog);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

} // namespace
} // namespace lbp
