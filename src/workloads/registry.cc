#include "workloads/registry.hh"

#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace lbp
{
namespace workloads
{

std::vector<WorkloadInfo>
allWorkloads()
{
    return {
        {"adpcm_enc", "IMA ADPCM speech encoder"},
        {"adpcm_dec", "IMA ADPCM speech decoder"},
        {"g724_enc", "GSM-EFR-style speech encoder"},
        {"g724_dec", "GSM-EFR-style speech decoder (Post_Filter)"},
        {"jpeg_enc", "JPEG-style photo encoder"},
        {"jpeg_dec", "JPEG-style photo decoder"},
        {"mpeg2_enc", "MPEG-2-style video encoder (motion search)"},
        {"mpeg2_dec", "MPEG-2-style video decoder (Add_Block)"},
        {"mpg123", "MPEG audio Layer-3-style decoder"},
        {"pgp_enc", "PGP-style block-cipher encoder"},
        {"pgp_dec", "PGP-style block-cipher decoder"},
    };
}

Program
buildWorkload(const std::string &name)
{
    if (name == "adpcm_enc")
        return buildAdpcmEnc();
    if (name == "adpcm_dec")
        return buildAdpcmDec();
    if (name == "g724_enc")
        return buildG724Enc();
    if (name == "g724_dec")
        return buildG724Dec();
    if (name == "jpeg_enc")
        return buildJpegEnc();
    if (name == "jpeg_dec")
        return buildJpegDec();
    if (name == "mpeg2_enc")
        return buildMpeg2Enc();
    if (name == "mpeg2_dec")
        return buildMpeg2Dec();
    if (name == "mpg123")
        return buildMpg123();
    if (name == "pgp_enc")
        return buildPgpEnc();
    if (name == "pgp_dec")
        return buildPgpDec();
    if (name == "post_filter_only")
        return buildPostFilterOnly();
    LBP_FATAL("unknown workload '", name, "'");
}

} // namespace workloads
} // namespace lbp
