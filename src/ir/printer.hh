/**
 * @file
 * Textual dumping of IR for debugging and golden tests.
 */

#ifndef LBP_IR_PRINTER_HH
#define LBP_IR_PRINTER_HH

#include <iosfwd>
#include <string>

#include "ir/program.hh"

namespace lbp
{

/** Render one operation to a string (assembly-like syntax). */
std::string toString(const Operation &op, const Function *fn = nullptr);

/** Dump a function (blocks in id order, live only). */
void print(std::ostream &os, const Function &fn);

/** Dump a whole program. */
void print(std::ostream &os, const Program &prog);

/** Convenience: function dump into a string. */
std::string toString(const Function &fn);

} // namespace lbp

#endif // LBP_IR_PRINTER_HH
