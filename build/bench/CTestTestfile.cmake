# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_sim_fastpath_smoke "/root/repo/build/bench/bench_sim_fastpath" "--quick")
set_tests_properties(bench_sim_fastpath_smoke PROPERTIES  LABELS "perf" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
