file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bufferops.dir/bench_table3_bufferops.cc.o"
  "CMakeFiles/bench_table3_bufferops.dir/bench_table3_bufferops.cc.o.d"
  "bench_table3_bufferops"
  "bench_table3_bufferops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bufferops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
