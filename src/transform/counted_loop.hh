/**
 * @file
 * Counted-loop finalization: rewrites simple (single-block) loops into
 * the hardware-loop form of Table 3. Counted loops get a REC_CLOOP
 * preface computing the trip count plus a BR_CLOOP back branch;
 * remaining simple loops get REC_WLOOP + BR_WLOOP. The loop buffer
 * allocator later decides which of these actually record into the
 * buffer (bufAddr >= 0).
 */

#ifndef LBP_TRANSFORM_COUNTED_LOOP_HH
#define LBP_TRANSFORM_COUNTED_LOOP_HH

#include "ir/program.hh"

namespace lbp
{

struct CountedLoopStats
{
    int cloops = 0;  ///< loops converted to counted hardware form
    int wloops = 0;  ///< loops converted to while hardware form
};

/** Convert all eligible simple loops in @p fn. */
CountedLoopStats convertCountedLoops(Function &fn);

/**
 * Emit trip-count computation ops at the end of @p pre (before its
 * terminator) for the canonical bottom-test induction @p ind, and
 * return the operand holding the trip count (immediate when static).
 * Returns a NONE operand for unsupported shapes. Shared by
 * counted-loop conversion and predicated loop collapsing.
 */
Operand emitTripCountOps(Function &fn, BasicBlock &pre,
                         const struct InductionInfo &ind);

/** Convert across the whole program. */
CountedLoopStats convertCountedLoops(Program &prog);

} // namespace lbp

#endif // LBP_TRANSFORM_COUNTED_LOOP_HH
