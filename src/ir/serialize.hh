/**
 * @file
 * Textual serialization of lbp programs: a canonical, line-oriented
 * format that round-trips exactly (writeText -> parseText yields a
 * structurally identical program). Used for golden tests, for
 * shipping reproducer programs in bug reports, and for hand-writing
 * small kernels without touching the C++ builder.
 *
 * Format sketch:
 *
 *     program adpcm_enc
 *     memory 8192
 *     checksum 4096 2048
 *     data 0 07000000 08000000 ...
 *     entry main
 *
 *     func adpcm_coder params(r1, r2, r3) rets 1
 *       block bb0 entry
 *         mov r4 = 0
 *         (p2) add r5 = r4, 12
 *         pred_def.lt p2:ut p3:uf = r5, 0
 *         br.lt r4, 8 -> bb0
 *         rec_cloop 64 -> bb1 buf 0 n 33
 *         falls bb1
 *       block bb1 hyperblock
 *         ...
 *
 * Operands: rN (register), pN (predicate), sN (slot), bare integers
 * are immediates. Attributes: `spec` (speculative), `outer`
 * (from-outer-loop), `sens` (sensitivity bit).
 */

#ifndef LBP_IR_SERIALIZE_HH
#define LBP_IR_SERIALIZE_HH

#include <string>

#include "ir/program.hh"

namespace lbp
{

/** Serialize @p prog to canonical text. */
std::string writeText(const Program &prog);

/**
 * Parse a program from text. Throws std::runtime_error (via
 * LBP_FATAL) with a line number on malformed input.
 */
Program parseText(const std::string &text);

} // namespace lbp

#endif // LBP_IR_SERIALIZE_HH
