/**
 * @file
 * VLIW simulator tests: fetch accounting, branch-penalty timing,
 * hardware-loop semantics (rec/exec, counted/while), pipelined-loop
 * timing corrections, and the two-phase bundle commit.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "ir/interpreter.hh"
#include "ir/builder.hh"
#include "sim/vliw_sim.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Straight counted-loop program. */
Program
loopProgram(int trip, int pad)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, trip, 1, [&](RegId i) {
        b.addTo(acc, R(acc), R(i));
        for (int p = 0; p < pad; ++p)
            b.binTo(Opcode::XOR, acc, R(acc), I(p * 3 + 1));
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

void
compileIt(Program &prog, CompileResult &cr, OptLevel lvl,
          int bufferOps)
{
    CompileOptions opts;
    opts.level = lvl;
    opts.bufferOps = bufferOps;
    compileProgram(prog, opts, cr);
}

TEST(Sim, MatchesInterpreterResults)
{
    Program prog = loopProgram(50, 6);
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);
    SimConfig sc;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    EXPECT_EQ(st.returns.size(), 1u);
    // Cross-check the return value against the reference interpreter.
    Interpreter interp(cr.ir);
    EXPECT_EQ(st.returns, interp.run().returns);
}

TEST(Sim, BufferedLoopFetchesFromBuffer)
{
    Program prog = loopProgram(100, 4);
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);
    SimConfig sc;
    sc.bufferOps = 256;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    // Recording iteration from memory; the other 99 from the buffer.
    EXPECT_GT(st.bufferFraction(), 0.9);
    ASSERT_EQ(st.activeLoops().size(), 1u);
    const LoopStats &ls = *st.activeLoops().front();
    EXPECT_EQ(ls.iterations, 100u);
    EXPECT_EQ(ls.recordings, 1u);
    EXPECT_EQ(ls.bufferIterations, 99u);
}

TEST(Sim, ZeroBufferFallsBackToMemory)
{
    Program prog = loopProgram(100, 4);
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 0);
    SimConfig sc;
    sc.bufferOps = 0;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.opsFromBuffer, 0u);
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
}

TEST(Sim, BufferedLoopBacksAreFree)
{
    // Same code, two buffer sizes: the buffered run must save the
    // per-iteration branch penalty.
    Program prog = loopProgram(200, 4);
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);

    SimConfig small;
    small.bufferOps = 0;
    VliwSim simSmall(cr.code, small);
    CompileResult cr0;
    Program prog0 = loopProgram(200, 4);
    compileIt(prog0, cr0, OptLevel::Traditional, 0);
    VliwSim simNone(cr0.code, small);
    const auto stNone = simNone.run();

    SimConfig big;
    big.bufferOps = 256;
    VliwSim simBig(cr.code, big);
    const auto stBig = simBig.run();

    EXPECT_LT(stBig.cycles, stNone.cycles);
    // Roughly: 199 loop-backs * penalty saved (pipelining may save
    // more).
    EXPECT_GE(stNone.cycles - stBig.cycles, 199u * 2);
}

TEST(Sim, PipelinedTimingUsesII)
{
    // A high-ILP loop: buffered cycles per iteration ~ II, far less
    // than the schedule length.
    Program prog;
    const auto data = prog.allocData(4096);
    prog.checksumBase = data;
    prog.checksumSize = 64;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    b.forLoop(0, 500, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(b.and_(R(i), I(255))), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        const RegId m = b.mul(R(v), I(3));
        const RegId s = b.shra(R(m), I(1));
        const RegId t = b.add(R(s), R(i));
        b.storeW(R(dp), R(i4), R(t));
    });
    b.ret({});
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);

    // Locate the loop body schedule.
    int ii = 0, len = 0;
    for (const auto &sf : cr.code.functions) {
        for (const auto &sb : sf.blocks) {
            if (sb.valid && sb.isLoopBody && sb.pipelined) {
                ii = sb.ii;
                len = sb.lengthCycles();
            }
        }
    }
    ASSERT_GT(ii, 0);
    ASSERT_GT(len, ii);

    SimConfig sc;
    sc.bufferOps = 256;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    // Total cycles ~ 500*II + prologue-ish overhead, far below
    // 500*len.
    EXPECT_LT(st.cycles, static_cast<std::uint64_t>(500) * len);
    EXPECT_GE(st.cycles, static_cast<std::uint64_t>(499) * ii);
}

TEST(Sim, NullifiedOpsStillFetched)
{
    // Predication trades fetch for branches: nullified ops count as
    // fetched (that's the paper's "total fetch" increase).
    Program prog;
    const auto data = prog.allocData(256 * 4);
    for (int i = 0; i < 256; ++i)
        prog.poke32(data + 4 * i, i % 2 ? 1 : -1);
    prog.checksumBase = data;
    prog.checksumSize = 16;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const PredId p = b.newPred();
    b.forLoop(0, 256, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        b.predDef(PredDefKind::UT, p, CmpCond::GT, R(v), I(0));
        Operation g = makeBinary(Opcode::ADD, acc, R(acc), I(10));
        g.guard = p;
        b.emit(g);
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Aggressive, 256);
    SimConfig sc;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    EXPECT_GT(st.opsNullified, 100u); // half the guarded adds
    EXPECT_EQ(st.returns[0], 128 * 10);
}

TEST(Sim, WhileLoopExitPenalizedOnlyWhenBuffered)
{
    // A wloop executed from the buffer mispredicts its exit; from
    // memory the fall-through is free. We check relative cycles.
    Program prog;
    const auto data = prog.allocData(64);
    prog.poke32(data, 75);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId x = b.loadW(R(dp), I(0));
    const RegId steps = b.iconst(0);
    const BlockId head = b.makeBlock();
    b.fallTo(head);
    b.at(head);
    b.movTo(x, R(b.shra(R(x), I(1))));
    b.addTo(steps, R(steps), I(1));
    b.br(CmpCond::GT, R(x), I(0), head);
    const BlockId done = b.makeBlock();
    b.fallTo(done);
    b.at(done);
    b.storeW(R(dp), I(0), R(steps));
    b.ret({R(steps)});
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);
    SimConfig sc;
    sc.bufferOps = 256;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    EXPECT_EQ(st.returns[0], 7); // 75 -> 37 -> ... -> 0
}

TEST(Sim, CallReturnRoundTrip)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId callee = prog.newFunction("twice");
    {
        Function &fn = prog.functions[callee];
        const RegId x = fn.newReg();
        fn.params = {x};
        fn.numReturns = 1;
        IRBuilder b(prog, callee);
        const RegId r = b.shl(R(x), I(1));
        b.ret({R(r)});
    }
    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    prog.functions[callee].noInline = true; // force a real call
    auto r = b.call(callee, {I(21)}, 1);
    const RegId dp = b.iconst(0);
    b.storeW(R(dp), I(0), R(r[0]));
    b.ret({R(r[0])});
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);
    SimConfig sc;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.returns[0], 42);
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
}

TEST(Sim, TwoPhaseBundleCommit)
{
    // A swap scheduled into one bundle must read both old values:
    // guaranteed by ANTI edges + read-before-write commit. We just
    // run a swap-heavy kernel and compare against the interpreter.
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 16;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    RegId a = b.iconst(3), c = b.iconst(17);
    b.forLoop(0, 9, 1, [&](RegId) {
        // Parallel-ish updates of a and c from each other.
        const RegId na = b.add(R(c), I(1));
        const RegId nc = b.sub(R(a), I(1));
        b.movTo(a, R(na));
        b.movTo(c, R(nc));
    });
    b.storeW(R(dp), I(0), R(a));
    b.storeW(R(dp), I(4), R(c));
    b.ret({});
    CompileResult cr;
    compileIt(prog, cr, OptLevel::Traditional, 256);
    SimConfig sc;
    VliwSim sim(cr.code, sc);
    EXPECT_EQ(sim.run().checksum, cr.goldenChecksum);
}

} // namespace
} // namespace lbp

namespace lbp
{
namespace
{

namespace cancel_detail
{

auto RR = [](RegId r) { return Operand::reg(r); };
auto II = [](std::int64_t v) { return Operand::imm(v); };

/**
 * A counted loop with a data-dependent break that fires mid-count:
 * the side exit must cancel the hardware-loop context (like real
 * zero-overhead-loop hardware), and a following loop must run
 * normally.
 */
Program
breakingLoop(int breakAt)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 16;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const RegId i = b.iconst(0);
    const BlockId head = b.makeBlock("head");
    const BlockId out = b.makeBlock("out");
    b.fallTo(head);
    b.at(head);
    b.addTo(acc, RR(acc), RR(i));
    b.br(CmpCond::GE, RR(i), II(breakAt), out); // break
    const BlockId cont = b.makeBlock();
    b.fallTo(cont);
    b.at(cont);
    b.addTo(i, RR(i), II(1));
    b.br(CmpCond::LT, RR(i), II(50), head);
    b.fallTo(out);
    b.at(out);
    // A second, well-behaved counted loop after the break target.
    const RegId j = b.iconst(0);
    const BlockId head2 = b.makeBlock("head2");
    b.fallTo(head2);
    b.at(head2);
    b.addTo(acc, RR(acc), II(1000));
    b.addTo(j, RR(j), II(1));
    b.br(CmpCond::LT, RR(j), II(3), head2);
    const BlockId done = b.makeBlock();
    b.fallTo(done);
    b.at(done);
    b.storeW(RR(dp), II(0), RR(acc));
    b.ret({RR(acc)});
    return prog;
}

} // namespace cancel_detail

class LoopCancelTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LoopCancelTest, SideExitCancelsHardwareLoop)
{
    using namespace cancel_detail;
    const int breakAt = GetParam();
    Program prog = breakingLoop(breakAt);
    Interpreter ref(prog);
    const auto golden = ref.run();

    for (OptLevel lvl : {OptLevel::Traditional, OptLevel::Aggressive}) {
        CompileOptions opts;
        opts.level = lvl;
        CompileResult cr;
        // The interpreter re-checks per stage: a leaked loop context
        // would already break here.
        ASSERT_NO_THROW(compileProgram(prog, opts, cr));
        SimConfig sc;
        sc.bufferOps = 256;
        VliwSim sim(cr.code, sc);
        const auto st = sim.run();
        EXPECT_EQ(st.checksum, golden.checksum) << "breakAt=" << breakAt;
        EXPECT_EQ(st.returns, golden.returns);
    }
}

// breakAt < 50 exits via the break; breakAt >= 50 exhausts the count.
INSTANTIATE_TEST_SUITE_P(BreakPoints, LoopCancelTest,
                         ::testing::Values(0, 7, 49, 50, 99));

TEST(LoopCancel, NestedInnerBreakKeepsOuterContext)
{
    using namespace cancel_detail;
    // An outer counted loop wrapping a breaking inner loop: the
    // inner side exit must cancel only the inner context.
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 16;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 6, 1, [&](RegId o) {
        const RegId i = b.iconst(0);
        const BlockId head = b.makeBlock();
        const BlockId out = b.makeBlock();
        b.fallTo(head);
        b.at(head);
        b.addTo(acc, RR(acc), RR(i));
        b.br(CmpCond::GE, RR(i), RR(o), out); // break at o
        const BlockId cont = b.makeBlock();
        b.fallTo(cont);
        b.at(cont);
        b.addTo(i, RR(i), II(1));
        b.br(CmpCond::LT, RR(i), II(10), head);
        b.fallTo(out);
        b.at(out);
        b.addTo(acc, RR(acc), II(100));
    });
    b.storeW(RR(dp), II(0), RR(acc));
    b.ret({RR(acc)});

    Interpreter ref(prog);
    const auto golden = ref.run();
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    SimConfig sc;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.checksum, golden.checksum);
    EXPECT_EQ(st.returns, golden.returns);
}

} // namespace
} // namespace lbp
